//! Run-length-compressed event streams.
//!
//! Scientific I/O is regular: a striped scan produces long sequences of
//! `(compute, fetch)` periods whose parameters repeat exactly, with only
//! the block address and iteration numbers advancing by a constant
//! stride. This module captures that regularity losslessly: a [`Run`]
//! stores one period template plus a repetition count, and lowers back to
//! the *identical* per-event sequence it was compressed from — same
//! fields, same float bits, same order. Compression is therefore a pure
//! representation change: every consumer that accepts the per-event
//! stream accepts a lowered run stream with bitwise-equal results.
//!
//! Three pieces:
//!
//! * [`Run`] / [`REvent`] — the compressed event kinds; a [`RunStream`] /
//!   [`RunSource`] mirror the per-event [`EventStream`] / [`EventSource`]
//!   traits,
//! * [`Compressor`] (and the [`CompressStream`] adapter) — a streaming
//!   one-pass fuser: consecutive periods with bitwise-identical
//!   parameters and uniform strides fuse into a run; anything else —
//!   `Power` events in particular — passes through untouched and breaks
//!   the run,
//! * [`LowerStream`] — the inverse adapter, expanding a run stream back
//!   into a per-event stream for legacy consumers (the verifier's replay,
//!   obs recorders, the v1 codec).

use crate::codec::CodecError;
use crate::event::{AppEvent, IoRequest};
use crate::stream::{EventSource, EventStream, DEFAULT_CHUNK_EVENTS};
use crate::trace::Trace;
use sdpm_ir::NestId;

/// One request of a run's period: the rep-0 instance plus the per-rep
/// block advance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTemplate {
    /// The request as issued by the run's first repetition.
    pub io: IoRequest,
    /// `start_block` advance per repetition (`iter` advances by the run's
    /// `iters_per_rep`).
    pub block_stride: u64,
}

/// A run: `count` repetitions of a `(compute, requests…)` period, with
/// the request templates rotating over `rotation` groups.
///
/// Striped files round-robin consecutive stripe units across disks, so a
/// steady scan's periods repeat with rotation `m` = the stripe factor:
/// period `p` issues the same requests as period `p − m`, one stripe
/// deeper on each disk. The run therefore stores `rotation · q`
/// templates (`q` requests per period); repetition `p` lowers to the
/// compute span covering iterations
/// `[first_iter + p·iters_per_rep, first_iter + (p+1)·iters_per_rep)`
/// followed by group `p % rotation`'s templates, each with
/// `start_block + (p/rotation)·stride` and
/// `iter + (p/rotation)·rotation·iters_per_rep`. With `rotation == 1`
/// this degenerates to the plain uniform-period run.
///
/// `secs_per_rep` is bitwise identical across repetitions — the
/// generator derives each flush as `iters as f64 * iter_secs`, which
/// depends only on the (repeating) iteration count, so equal periods
/// really do carry equal float bits.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// Repetition count, ≥ 1.
    pub count: u64,
    /// Nest of the period's compute span.
    pub nest: NestId,
    /// First iteration of repetition 0's compute span.
    pub first_iter: u64,
    /// Iterations per compute span, ≥ 1.
    pub iters_per_rep: u64,
    /// Seconds per compute span (bitwise identical every repetition).
    pub secs_per_rep: f64,
    /// Template groups cycled by `rep % rotation`, ≥ 1.
    pub rotation: u64,
    /// All template groups' requests, concatenated in group order:
    /// `reqs[g·q .. (g+1)·q]` is group `g`. Non-empty, length a multiple
    /// of `rotation`.
    pub reqs: Vec<IoTemplate>,
}

impl Run {
    /// Requests one repetition issues (templates per group).
    #[must_use]
    pub fn reqs_per_rep(&self) -> u64 {
        self.reqs.len() as u64 / self.rotation
    }

    /// Events one repetition lowers to: the compute span plus each
    /// request of its group.
    #[must_use]
    pub fn events_per_rep(&self) -> u64 {
        1 + self.reqs_per_rep()
    }

    /// Total events this run lowers to.
    #[must_use]
    pub fn event_len(&self) -> u64 {
        self.count * self.events_per_rep()
    }

    /// The `sub`-th event of repetition `rep`: `0` is the compute span,
    /// `1 + j` is request `j` of group `rep % rotation`.
    ///
    /// # Panics
    /// If `rep >= count` or `sub >= events_per_rep()`.
    #[must_use]
    pub fn event_at(&self, rep: u64, sub: u64) -> AppEvent {
        debug_assert!(rep < self.count && sub < self.events_per_rep());
        if sub == 0 {
            AppEvent::Compute {
                nest: self.nest,
                first_iter: self.first_iter + rep * self.iters_per_rep,
                iters: self.iters_per_rep,
                secs: self.secs_per_rep,
            }
        } else {
            let group = rep % self.rotation;
            let cycle = rep / self.rotation;
            // Checked narrowing: on a 32-bit target a hostile run could
            // otherwise silently truncate the index; saturating to
            // usize::MAX turns that into a clean bounds panic instead.
            let idx = group * self.reqs_per_rep() + sub - 1;
            let t = &self.reqs[usize::try_from(idx).unwrap_or(usize::MAX)];
            AppEvent::Io(IoRequest {
                start_block: t.io.start_block + cycle * t.block_stride,
                iter: t.io.iter + cycle * self.rotation * self.iters_per_rep,
                ..t.io
            })
        }
    }

    /// Appends the full per-event expansion to `out`.
    pub fn lower_into(&self, out: &mut Vec<AppEvent>) {
        for rep in 0..self.count {
            for sub in 0..self.events_per_rep() {
                out.push(self.event_at(rep, sub));
            }
        }
    }

    /// Structural validation: the invariants lowering relies on, plus
    /// overflow-freedom of the last repetition's address arithmetic (so a
    /// decoded run cannot wrap in [`Run::event_at`]).
    ///
    /// # Errors
    /// A human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("run with zero repetitions".into());
        }
        if self.iters_per_rep == 0 {
            return Err("run with zero iterations per repetition".into());
        }
        if self.rotation == 0 {
            return Err("run with zero rotation".into());
        }
        if self.reqs.is_empty() {
            return Err("run with no requests".into());
        }
        if !(self.reqs.len() as u64).is_multiple_of(self.rotation) {
            return Err(format!(
                "run template count {} is not a multiple of rotation {}",
                self.reqs.len(),
                self.rotation
            ));
        }
        let last = self.count - 1;
        let span = last
            .checked_mul(self.iters_per_rep)
            .and_then(|s| s.checked_add(self.first_iter))
            .and_then(|s| s.checked_add(self.iters_per_rep));
        if span.is_none() {
            return Err("run iteration range overflows u64".into());
        }
        let last_cycle = last / self.rotation;
        let iter_adv = self
            .rotation
            .checked_mul(self.iters_per_rep)
            .and_then(|per| per.checked_mul(last_cycle));
        let Some(iter_adv) = iter_adv else {
            return Err("run iteration advance overflows u64".into());
        };
        for (j, t) in self.reqs.iter().enumerate() {
            let block = last_cycle
                .checked_mul(t.block_stride)
                .and_then(|b| b.checked_add(t.io.start_block));
            let iter = t.io.iter.checked_add(iter_adv);
            if block.is_none() || iter.is_none() {
                return Err(format!("run request {j} address arithmetic overflows u64"));
            }
        }
        Ok(())
    }
}

/// One record of a run-compressed stream: a plain event or a run.
#[derive(Debug, Clone, PartialEq)]
pub enum REvent {
    /// An event that is not part of any run.
    Event(AppEvent),
    /// A compressed repetition of `(compute, requests…)` periods.
    Run(Run),
}

impl REvent {
    /// Events this record lowers to.
    #[must_use]
    pub fn event_len(&self) -> u64 {
        match self {
            REvent::Event(_) => 1,
            REvent::Run(r) => r.event_len(),
        }
    }
}

/// A pull-based, chunked run-compressed stream; the compressed analogue
/// of [`EventStream`], with the same lending-iterator contract.
pub trait RunStream {
    /// Application name the records came from.
    fn name(&self) -> &str;

    /// Disk pool size the records were generated against.
    fn pool_size(&self) -> u32;

    /// The next chunk of records, or `None` when exhausted. Chunks are
    /// non-empty.
    fn next_chunk(&mut self) -> Option<&[REvent]>;

    /// Fallible variant of [`RunStream::next_chunk`]. Streams that
    /// cannot fail inherit this default; streams over untrusted bytes
    /// ([`crate::codec::DecodeRunStream`]) override it to surface
    /// corruption as a [`CodecError`] instead of panicking.
    fn try_next_chunk(&mut self) -> Result<Option<&[REvent]>, CodecError> {
        Ok(self.next_chunk())
    }
}

impl<S: RunStream + ?Sized> RunStream for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn pool_size(&self) -> u32 {
        (**self).pool_size()
    }

    fn next_chunk(&mut self) -> Option<&[REvent]> {
        (**self).next_chunk()
    }

    fn try_next_chunk(&mut self) -> Result<Option<&[REvent]>, CodecError> {
        (**self).try_next_chunk()
    }
}

/// A re-openable run-compressed stream factory; the compressed analogue
/// of [`EventSource`] (the oracle policies replay twice).
pub trait RunSource {
    /// Opens a fresh run stream positioned at the first record.
    fn open_runs(&self) -> Box<dyn RunStream + '_>;
}

/// A materialized run-compressed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    pub name: String,
    pub pool_size: u32,
    pub events: Vec<REvent>,
}

impl RunTrace {
    /// Events the trace lowers to.
    #[must_use]
    pub fn event_len(&self) -> u64 {
        self.events.iter().map(REvent::event_len).sum()
    }

    /// A chunked stream over this trace's records.
    #[must_use]
    pub fn stream(&self) -> RunTraceStream<'_> {
        RunTraceStream::new(self)
    }

    /// The per-event trace this compresses; lowering is exact, so this is
    /// the trace the compressor consumed, field for field and bit for
    /// bit.
    #[must_use]
    pub fn lower(&self) -> Trace {
        let _sp = crate::prof::span("trace.lower");
        let mut events = Vec::with_capacity(usize::try_from(self.event_len()).unwrap_or(0));
        for re in &self.events {
            match re {
                REvent::Event(e) => events.push(*e),
                REvent::Run(r) => r.lower_into(&mut events),
            }
        }
        Trace {
            name: self.name.clone(),
            pool_size: self.pool_size,
            events,
        }
    }
}

impl RunSource for RunTrace {
    fn open_runs(&self) -> Box<dyn RunStream + '_> {
        Box::new(self.stream())
    }
}

/// Legacy consumers see a run-compressed trace as a per-event source via
/// the lowering adapter.
impl EventSource for RunTrace {
    fn open(&self) -> Box<dyn EventStream + '_> {
        Box::new(LowerStream::new(self.stream()))
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.event_len())
    }
}

/// Chunked read-only windows over a materialized [`RunTrace`].
pub struct RunTraceStream<'a> {
    trace: &'a RunTrace,
    pos: usize,
    chunk: usize,
}

impl<'a> RunTraceStream<'a> {
    /// Streams `trace` in [`DEFAULT_CHUNK_EVENTS`]-sized record chunks.
    #[must_use]
    pub fn new(trace: &'a RunTrace) -> Self {
        Self::chunked(trace, DEFAULT_CHUNK_EVENTS)
    }

    /// Streams `trace` in `chunk`-sized record chunks.
    ///
    /// # Panics
    /// If `chunk` is zero.
    #[must_use]
    pub fn chunked(trace: &'a RunTrace, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        RunTraceStream {
            trace,
            pos: 0,
            chunk,
        }
    }
}

impl RunStream for RunTraceStream<'_> {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn pool_size(&self) -> u32 {
        self.trace.pool_size
    }

    fn next_chunk(&mut self) -> Option<&[REvent]> {
        if self.pos >= self.trace.events.len() {
            return None;
        }
        let end = (self.pos + self.chunk).min(self.trace.events.len());
        let out = &self.trace.events[self.pos..end];
        self.pos = end;
        Some(out)
    }
}

/// Drains a run stream into a materialized [`RunTrace`].
#[must_use]
pub fn collect_runs(stream: &mut dyn RunStream) -> RunTrace {
    let name = stream.name().to_string();
    let pool_size = stream.pool_size();
    let mut events = Vec::new();
    while let Some(chunk) = stream.next_chunk() {
        events.extend_from_slice(chunk);
    }
    crate::prof::add("run.records", events.len() as u64);
    RunTrace {
        name,
        pool_size,
        events,
    }
}

/// An open period: a compute span, then the requests issued before the
/// next compute.
struct Period {
    nest: NestId,
    first_iter: u64,
    iters: u64,
    secs: f64,
    ios: Vec<IoRequest>,
}

/// Largest template rotation the fuser searches for. Striped layouts
/// rotate a scan's requests across the stripe factor's worth of disks,
/// so this bounds the stripe factors that still compress (the paper's
/// configurations stripe over at most 16 disks).
pub const MAX_ROTATION: u64 = 16;

/// [`MAX_ROTATION`] as an in-memory index bound (kept in lockstep by
/// the assertion below, without a narrowing cast).
const MAX_ROTATION_IDX: usize = 16;
const _: () = assert!(MAX_ROTATION_IDX as u64 == MAX_ROTATION);

/// Streaming one-pass run fuser.
///
/// Push events in order; compressed records come out in order. A period
/// is a `Compute` span followed by the requests before the next span.
/// Completed periods accumulate in a bounded lookback buffer until some
/// rotation `m ≤ MAX_ROTATION` explains the tail: the last `2m` periods
/// share one compute shape (same nest, same iteration count,
/// bitwise-equal seconds, iterations chaining contiguously) and period
/// `i + m` repeats period `i`'s requests exactly — same
/// disk/size/kind/sequential, iteration advancing by `m` periods, block
/// advancing by a constant per-template stride. The smallest such `m`
/// wins (a uniform trace detects as `m = 1`; a stripe-8 scan as
/// `m = 8`), those `2m` periods become an open [`Run`], and later
/// periods extend it one repetition at a time. The comparisons are exact
/// (bit equality on floats), so fusing loses nothing: lowering the
/// output reproduces the input sequence identically. Anything that does
/// not fit — a parameter change, a `Power` event, a bare request —
/// flushes the open run and drains unmatched periods as plain events.
#[derive(Default)]
pub struct Compressor {
    cur: Option<Period>,
    open: Option<Run>,
    /// Completed periods not yet explained by a run, oldest first; empty
    /// whenever `open` is `Some`, and never longer than `2·MAX_ROTATION`.
    pending: std::collections::VecDeque<Period>,
}

impl Compressor {
    #[must_use]
    pub fn new() -> Self {
        Compressor::default()
    }

    /// Consumes one event, appending any completed records to `out`.
    pub fn push(&mut self, e: &AppEvent, out: &mut Vec<REvent>) {
        match e {
            AppEvent::Compute {
                nest,
                first_iter,
                iters,
                secs,
            } => {
                self.close_period(out);
                if *iters >= 1 {
                    self.cur = Some(Period {
                        nest: *nest,
                        first_iter: *first_iter,
                        iters: *iters,
                        secs: *secs,
                        ios: Vec::new(),
                    });
                } else {
                    // A zero-iteration span cannot head a period (runs
                    // advance iterations per repetition).
                    self.break_runs(out);
                    out.push(REvent::Event(*e));
                }
            }
            AppEvent::Io(r) => {
                if let Some(p) = &mut self.cur {
                    p.ios.push(*r);
                } else {
                    // A request with no preceding compute span (the
                    // trace-initial burst) passes through raw.
                    self.break_runs(out);
                    out.push(REvent::Event(*e));
                }
            }
            AppEvent::Power { .. } => {
                self.close_period(out);
                self.break_runs(out);
                out.push(REvent::Event(*e));
            }
        }
    }

    /// Flushes all pending state; call once after the last event.
    pub fn finish(&mut self, out: &mut Vec<REvent>) {
        self.close_period(out);
        self.break_runs(out);
    }

    /// Closes the in-flight period: attach it to the open run, or buffer
    /// it for rotation detection (if it cannot head a run, emit it raw).
    fn close_period(&mut self, out: &mut Vec<REvent>) {
        let Some(p) = self.cur.take() else {
            return;
        };
        if p.ios.is_empty() {
            // A bare compute span (nest tail) breaks and bypasses runs.
            self.break_runs(out);
            out.push(REvent::Event(AppEvent::Compute {
                nest: p.nest,
                first_iter: p.first_iter,
                iters: p.iters,
                secs: p.secs,
            }));
            return;
        }
        if let Some(run) = &mut self.open {
            if Self::attach(run, &p) {
                return;
            }
            // `pending` is empty while a run is open, so the flush keeps
            // output in order before `p` enters the buffer.
            self.flush_open(out);
        }
        self.pending.push_back(p);
        self.detect(out);
        while self.pending.len() > 2 * MAX_ROTATION_IDX {
            let Some(old) = self.pending.pop_front() else {
                break; // unreachable: len check above guarantees an element
            };
            Self::emit_period(&old, out);
        }
    }

    /// Tries to append `p` as repetition `run.count` of `run`.
    fn attach(run: &mut Run, p: &Period) -> bool {
        let q = run.reqs_per_rep();
        if p.nest != run.nest
            || p.iters != run.iters_per_rep
            || p.secs.to_bits() != run.secs_per_rep.to_bits()
            || p.ios.len() as u64 != q
        {
            return false;
        }
        let k = run.count;
        let Some(iter_adv) = k.checked_mul(run.iters_per_rep) else {
            return false;
        };
        if run.first_iter.checked_add(iter_adv) != Some(p.first_iter) {
            return false;
        }
        let group = k % run.rotation;
        let cycle = k / run.rotation;
        let tpl_iter_adv = run
            .rotation
            .checked_mul(run.iters_per_rep)
            .and_then(|per| per.checked_mul(cycle));
        let Some(tpl_iter_adv) = tpl_iter_adv else {
            return false;
        };
        // `group * q` indexes into `run.reqs`, whose in-memory length
        // bounds it; if saturation could ever fire (32-bit target, value
        // past `usize::MAX`) the slice below fails loudly instead of
        // aliasing a wrong group.
        let start = usize::try_from(group * q).unwrap_or(usize::MAX);
        let per = usize::try_from(q).unwrap_or(usize::MAX);
        for (t, r) in run.reqs[start..start + per].iter().zip(&p.ios) {
            if r.disk != t.io.disk
                || r.size_bytes != t.io.size_bytes
                || r.kind != t.io.kind
                || r.sequential != t.io.sequential
                || r.nest != t.io.nest
            {
                return false;
            }
            if t.io.iter.checked_add(tpl_iter_adv) != Some(r.iter) {
                return false;
            }
            let expect = cycle
                .checked_mul(t.block_stride)
                .and_then(|adv| t.io.start_block.checked_add(adv));
            if expect != Some(r.start_block) {
                return false;
            }
        }
        run.count += 1;
        true
    }

    /// Looks for the smallest rotation whose `2m`-period window ends the
    /// pending buffer; on a match, drains the periods before the window
    /// raw and opens a run covering the window.
    fn detect(&mut self, out: &mut Vec<REvent>) {
        let n = self.pending.len();
        for m in 1..=MAX_ROTATION_IDX {
            if n < 2 * m {
                break;
            }
            if let Some(run) = Self::try_window(&self.pending, n - 2 * m, m) {
                for p in self.pending.drain(..n - 2 * m) {
                    Self::emit_period(&p, out);
                }
                self.pending.clear();
                self.open = Some(run);
                return;
            }
        }
    }

    /// Checks whether `pending[start..start + 2m]` is a rotation-`m`
    /// window and builds the covering run if so.
    fn try_window(
        pending: &std::collections::VecDeque<Period>,
        start: usize,
        m: usize,
    ) -> Option<Run> {
        let w: Vec<&Period> = pending.iter().skip(start).collect();
        let head = w[0];
        let q = head.ios.len();
        for (i, p) in w.iter().enumerate() {
            if p.nest != head.nest
                || p.iters != head.iters
                || p.secs.to_bits() != head.secs.to_bits()
                || p.ios.len() != q
            {
                return None;
            }
            let adv = (i as u64).checked_mul(head.iters)?;
            if head.first_iter.checked_add(adv) != Some(p.first_iter) {
                return None;
            }
        }
        let iter_adv = (m as u64).checked_mul(head.iters)?;
        let mut reqs = Vec::with_capacity(m * q);
        for g in 0..m {
            let (a, b) = (w[g], w[g + m]);
            for j in 0..q {
                let (ra, rb) = (&a.ios[j], &b.ios[j]);
                if ra.disk != rb.disk
                    || ra.size_bytes != rb.size_bytes
                    || ra.kind != rb.kind
                    || ra.sequential != rb.sequential
                    || ra.nest != rb.nest
                {
                    return None;
                }
                if ra.iter.checked_add(iter_adv) != Some(rb.iter) {
                    return None;
                }
                let stride = rb.start_block.checked_sub(ra.start_block)?;
                reqs.push(IoTemplate {
                    io: *ra,
                    block_stride: stride,
                });
            }
        }
        Some(Run {
            count: 2 * m as u64,
            nest: head.nest,
            first_iter: head.first_iter,
            iters_per_rep: head.iters,
            secs_per_rep: head.secs,
            rotation: m as u64,
            reqs,
        })
    }

    /// Lowers one unmatched period back to plain events.
    fn emit_period(p: &Period, out: &mut Vec<REvent>) {
        out.push(REvent::Event(AppEvent::Compute {
            nest: p.nest,
            first_iter: p.first_iter,
            iters: p.iters,
            secs: p.secs,
        }));
        out.extend(p.ios.iter().map(|io| REvent::Event(AppEvent::Io(*io))));
    }

    /// Flushes the open run and drains every buffered period raw.
    fn break_runs(&mut self, out: &mut Vec<REvent>) {
        self.flush_open(out);
        for p in std::mem::take(&mut self.pending) {
            Self::emit_period(&p, out);
        }
    }

    /// Emits the open run. [`Compressor::detect`] only opens runs that
    /// already cover two full rotations, so the record always pays.
    fn flush_open(&mut self, out: &mut Vec<REvent>) {
        if let Some(run) = self.open.take() {
            debug_assert!(run.count >= 2);
            out.push(REvent::Run(run));
        }
    }
}

/// Compresses a per-event stream into a materialized [`RunTrace`].
#[must_use]
pub fn compress_stream(stream: &mut dyn EventStream) -> RunTrace {
    let _sp = crate::prof::span("trace.compress");
    let name = stream.name().to_string();
    let pool_size = stream.pool_size();
    let mut comp = Compressor::new();
    let mut events = Vec::new();
    let mut seen: u64 = 0;
    while let Some(chunk) = stream.next_chunk() {
        seen += chunk.len() as u64;
        for e in chunk {
            comp.push(e, &mut events);
        }
    }
    comp.finish(&mut events);
    crate::prof::add("compress.events_in", seen);
    crate::prof::add("compress.records_out", events.len() as u64);
    RunTrace {
        name,
        pool_size,
        events,
    }
}

/// Compresses a materialized trace. `compress(t).lower() == *t` exactly.
#[must_use]
pub fn compress(trace: &Trace) -> RunTrace {
    compress_stream(&mut trace.stream())
}

/// Adapter: run-compresses a per-event stream on the fly.
pub struct CompressStream<S: EventStream> {
    inner: S,
    comp: Compressor,
    buf: Vec<REvent>,
    done: bool,
}

impl<S: EventStream> CompressStream<S> {
    #[must_use]
    pub fn new(inner: S) -> Self {
        CompressStream {
            inner,
            comp: Compressor::new(),
            buf: Vec::new(),
            done: false,
        }
    }
}

impl<S: EventStream> RunStream for CompressStream<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn pool_size(&self) -> u32 {
        self.inner.pool_size()
    }

    fn next_chunk(&mut self) -> Option<&[REvent]> {
        self.buf.clear();
        while self.buf.is_empty() && !self.done {
            match self.inner.next_chunk() {
                Some(chunk) => {
                    for e in chunk {
                        self.comp.push(e, &mut self.buf);
                    }
                }
                None => {
                    self.comp.finish(&mut self.buf);
                    self.done = true;
                }
            }
        }
        if self.buf.is_empty() {
            None
        } else {
            crate::prof::add("compress.records_out", self.buf.len() as u64);
            Some(&self.buf)
        }
    }
}

/// Adapter: expands a run stream back into the per-event stream it was
/// compressed from. Expansion is incremental — a long run is delivered
/// across as many chunks as needed — so the working set stays bounded by
/// the chunk size, not the run length.
pub struct LowerStream<S: RunStream> {
    inner: S,
    pending: Vec<REvent>,
    idx: usize,
    rep: u64,
    sub: u64,
    buf: Vec<AppEvent>,
    target: usize,
}

impl<S: RunStream> LowerStream<S> {
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self::chunked(inner, DEFAULT_CHUNK_EVENTS)
    }

    /// Like [`LowerStream::new`] with an explicit output chunk size.
    ///
    /// # Panics
    /// If `target` is zero.
    #[must_use]
    pub fn chunked(inner: S, target: usize) -> Self {
        assert!(target > 0, "chunk size must be positive");
        LowerStream {
            inner,
            pending: Vec::new(),
            idx: 0,
            rep: 0,
            sub: 0,
            buf: Vec::new(),
            target,
        }
    }
}

impl<S: RunStream> EventStream for LowerStream<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn pool_size(&self) -> u32 {
        self.inner.pool_size()
    }

    fn next_chunk(&mut self) -> Option<&[AppEvent]> {
        let LowerStream {
            inner,
            pending,
            idx,
            rep,
            sub,
            buf,
            target,
        } = self;
        buf.clear();
        while buf.len() < *target {
            if *idx >= pending.len() {
                match inner.next_chunk() {
                    Some(chunk) => {
                        pending.clear();
                        pending.extend_from_slice(chunk);
                        *idx = 0;
                    }
                    None => break,
                }
                continue;
            }
            match &pending[*idx] {
                REvent::Event(e) => {
                    buf.push(*e);
                    *idx += 1;
                }
                REvent::Run(run) => {
                    let per = run.events_per_rep();
                    while *rep < run.count && buf.len() < *target {
                        while *sub < per && buf.len() < *target {
                            buf.push(run.event_at(*rep, *sub));
                            *sub += 1;
                        }
                        if *sub == per {
                            *sub = 0;
                            *rep += 1;
                        }
                    }
                    if *rep == run.count {
                        *rep = 0;
                        *idx += 1;
                    }
                }
            }
        }
        if buf.is_empty() {
            None
        } else {
            crate::prof::add("lower.events", buf.len() as u64);
            Some(buf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PowerAction, ReqKind};
    use crate::stream::collect;
    use sdpm_layout::DiskId;

    fn compute(nest: NestId, first_iter: u64, iters: u64, secs: f64) -> AppEvent {
        AppEvent::Compute {
            nest,
            first_iter,
            iters,
            secs,
        }
    }

    fn io(disk: u32, block: u64, iter: u64) -> AppEvent {
        AppEvent::Io(IoRequest {
            disk: DiskId(disk),
            start_block: block,
            size_bytes: 4096,
            kind: ReqKind::Read,
            sequential: false,
            nest: 0,
            iter,
        })
    }

    /// `n` periods of [compute(8 iters), io(+128 blocks)] plus a leading
    /// burst and a trailing tail.
    fn periodic_trace(n: u64) -> Trace {
        let mut events = vec![io(0, 0, 0)];
        for k in 0..n {
            events.push(compute(0, k * 8, 8, 8.0 * 1e-6));
            events.push(io(0, 128 + k * 128, (k + 1) * 8));
        }
        events.push(compute(0, n * 8, 3, 3.0 * 1e-6));
        Trace {
            name: "periodic".into(),
            pool_size: 1,
            events,
        }
    }

    #[test]
    fn periodic_trace_fuses_into_one_run() {
        let t = periodic_trace(100);
        let rt = compress(&t);
        // Leading burst + one run + tail compute.
        assert_eq!(rt.events.len(), 3);
        let REvent::Run(run) = &rt.events[1] else {
            panic!("middle record must be a run, got {:?}", rt.events[1]);
        };
        assert_eq!(run.count, 100);
        assert_eq!(run.iters_per_rep, 8);
        assert_eq!(run.rotation, 1);
        assert_eq!(run.reqs.len(), 1);
        assert_eq!(run.reqs[0].block_stride, 128);
        assert_eq!(run.validate(), Ok(()));
    }

    /// `n` periods whose single request rotates over `m` disks (the
    /// striped-layout shape): period `k` reads disk `k % m`, one stripe
    /// deeper every full rotation.
    fn rotating_trace(n: u64, m: u64) -> Trace {
        let mut events = Vec::new();
        for k in 0..n {
            events.push(compute(0, k * 8, 8, 8.0 * 1e-6));
            events.push(io((k % m) as u32, (k / m) * 128, (k + 1) * 8));
        }
        Trace {
            name: "rotating".into(),
            pool_size: m as u32,
            events,
        }
    }

    #[test]
    fn striped_rotation_fuses_into_one_run() {
        let t = rotating_trace(40, 4);
        let rt = compress(&t);
        assert_eq!(rt.events.len(), 1, "whole trace must fuse: {:?}", rt.events);
        let REvent::Run(run) = &rt.events[0] else {
            panic!("expected one run");
        };
        assert_eq!(run.count, 40);
        assert_eq!(run.rotation, 4);
        assert_eq!(run.reqs.len(), 4);
        assert!(run.reqs.iter().all(|t| t.block_stride == 128));
        assert_eq!(run.validate(), Ok(()));
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn rotation_detection_picks_the_smallest_cycle() {
        // Disks rotate with period 2; m = 1 can never match, m = 2 must.
        let t = rotating_trace(12, 2);
        let rt = compress(&t);
        let REvent::Run(run) = &rt.events[0] else {
            panic!("expected a run, got {:?}", rt.events[0]);
        };
        assert_eq!(run.rotation, 2);
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn rotation_beyond_the_search_bound_stays_raw() {
        let m = MAX_ROTATION + 1;
        let t = rotating_trace(4 * m, m);
        let rt = compress(&t);
        assert!(rt.events.iter().all(|e| matches!(e, REvent::Event(_))));
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn rotating_run_lowers_through_the_stream_adapter() {
        let t = rotating_trace(35, 8);
        let rt = compress(&t);
        let mut s = LowerStream::chunked(rt.stream(), 5);
        assert_eq!(collect(&mut s), t);
    }

    #[test]
    fn compress_then_lower_is_identity() {
        let t = periodic_trace(17);
        assert_eq!(compress(&t).lower(), t);
    }

    #[test]
    fn multi_request_periods_fuse_with_per_template_strides() {
        let mut events = Vec::new();
        for k in 0..10u64 {
            events.push(compute(2, k * 4, 4, 4.0e-6));
            events.push(io(0, k * 64, (k + 1) * 4));
            events.push(io(3, 1000 + k * 32, (k + 1) * 4));
        }
        let t = Trace {
            name: "multi".into(),
            pool_size: 4,
            events,
        };
        let rt = compress(&t);
        assert_eq!(rt.events.len(), 1);
        let REvent::Run(run) = &rt.events[0] else {
            panic!("expected one run");
        };
        assert_eq!(run.count, 10);
        assert_eq!(run.reqs.len(), 2);
        assert_eq!(run.reqs[0].block_stride, 64);
        assert_eq!(run.reqs[1].block_stride, 32);
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn power_events_break_runs() {
        let mut t = periodic_trace(20);
        t.events.insert(
            11,
            AppEvent::Power {
                disk: DiskId(0),
                action: PowerAction::SpinDown,
            },
        );
        let rt = compress(&t);
        assert!(
            rt.events
                .iter()
                .any(|e| matches!(e, REvent::Event(AppEvent::Power { .. }))),
            "power event must pass through raw"
        );
        // Two runs on either side of the power event.
        let runs = rt
            .events
            .iter()
            .filter(|e| matches!(e, REvent::Run(_)))
            .count();
        assert_eq!(runs, 2);
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn parameter_change_splits_runs() {
        let mut events = Vec::new();
        for k in 0..5u64 {
            events.push(compute(0, k * 8, 8, 1.0e-6));
            events.push(io(0, k * 128, (k + 1) * 8));
        }
        // Same shape but different compute seconds: new run.
        for k in 5..10u64 {
            events.push(compute(0, k * 8, 8, 2.0e-6));
            events.push(io(0, k * 128, (k + 1) * 8));
        }
        let t = Trace {
            name: "split".into(),
            pool_size: 1,
            events,
        };
        let rt = compress(&t);
        let runs = rt
            .events
            .iter()
            .filter(|e| matches!(e, REvent::Run(_)))
            .count();
        assert_eq!(runs, 2);
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn single_periods_stay_uncompressed() {
        let t = Trace {
            name: "single".into(),
            pool_size: 1,
            events: vec![
                compute(0, 0, 8, 1.0e-6),
                io(0, 0, 8),
                compute(0, 8, 2, 2.5e-7),
            ],
        };
        let rt = compress(&t);
        assert!(rt.events.iter().all(|e| matches!(e, REvent::Event(_))));
        assert_eq!(rt.lower(), t);
    }

    #[test]
    fn lower_stream_resumes_runs_across_tiny_chunks() {
        let t = periodic_trace(33);
        let rt = compress(&t);
        let mut s = LowerStream::chunked(rt.stream(), 3);
        let lowered = collect(&mut s);
        assert_eq!(lowered, t);
    }

    #[test]
    fn compress_stream_adapter_matches_materialized_compression() {
        let t = periodic_trace(50);
        let via_adapter = collect_runs(&mut CompressStream::new(t.stream()));
        assert_eq!(via_adapter, compress(&t));
    }

    #[test]
    fn run_trace_is_an_event_source() {
        let t = periodic_trace(12);
        let rt = compress(&t);
        assert_eq!(rt.size_hint(), Some(t.events.len() as u64));
        let lowered = collect(&mut *EventSource::open(&rt));
        assert_eq!(lowered, t);
    }

    #[test]
    fn validate_rejects_degenerate_runs() {
        let run = Run {
            count: 0,
            nest: 0,
            first_iter: 0,
            iters_per_rep: 1,
            secs_per_rep: 0.0,
            rotation: 1,
            reqs: vec![],
        };
        assert!(run.validate().is_err());
        let run = Run {
            count: 2,
            nest: 0,
            first_iter: 0,
            iters_per_rep: u64::MAX,
            secs_per_rep: 0.0,
            rotation: 1,
            reqs: vec![IoTemplate {
                io: IoRequest {
                    disk: DiskId(0),
                    start_block: 0,
                    size_bytes: 1,
                    kind: ReqKind::Read,
                    sequential: false,
                    nest: 0,
                    iter: 0,
                },
                block_stride: 0,
            }],
        };
        assert!(run.validate().is_err(), "overflowing iteration range");
        let run = Run {
            count: 2,
            nest: 0,
            first_iter: 0,
            iters_per_rep: 1,
            secs_per_rep: 0.0,
            rotation: 2,
            reqs: vec![IoTemplate {
                io: IoRequest {
                    disk: DiskId(0),
                    start_block: 0,
                    size_bytes: 1,
                    kind: ReqKind::Read,
                    sequential: false,
                    nest: 0,
                    iter: 0,
                },
                block_stride: 0,
            }],
        };
        assert!(
            run.validate().is_err(),
            "template count not a multiple of rotation"
        );
    }
}
