//! I/O traces, trace generation, and power-management directives.
//!
//! The paper's toolchain (Fig. 1) runs the compiler-instrumented program
//! once to produce a disk I/O request trace — each request a 4-tuple
//! `(arrival time ms, start block, request size, read|write)` — which then
//! drives the disk power simulator. This crate owns that interface layer:
//!
//! * [`event`] — the application event stream: `Compute` segments, blocking
//!   [`IoRequest`]s, and the explicit power-management calls
//!   (`spin_down` / `spin_up` / `set_RPM`) the compiler inserts,
//! * [`trace`] — whole traces with provenance, statistics, and the paper's
//!   nominal 4-tuple view,
//! * [`gen`] — the trace generator: walks an IR program, filters element
//!   accesses through a one-chunk-per-array buffer cache, and emits
//!   block-level striped requests,
//! * [`codec`] — a compact binary encoding for storing/replaying traces,
//!   with incremental [`StreamEncoder`]/[`DecodeStream`] endpoints,
//! * [`stream`] — pull-based chunked [`EventStream`]s over all of the
//!   above, plus the per-disk demultiplexer ([`demux`]).
//!
//! Traces are *closed-loop*: each request carries the compute time that
//! precedes it rather than a fixed wall-clock arrival, so the simulator
//! can propagate device stalls into application execution time — exactly
//! the effect behind the paper's Fig. 4 performance comparison.

// This crate parses untrusted bytes; a stray `unwrap()` is a
// denial-of-service. Failures must flow through `CodecError` (or, for
// caller contract violations, an explicit `panic!` with context).
// Narrowing and sign-discarding casts silently corrupt decoded values,
// so each one must be spelled as an audited conversion or carry an
// allow with its range argument.
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )
)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod event;
pub mod gen;
pub mod mix;
sdpm_obs::prof_hooks!();
pub mod run;
pub mod rungen;
pub mod stream;
pub mod trace;

pub use codec::{DecodeRunStream, DecodeStream, RunStreamEncoder, StreamEncoder};
pub use event::{AppEvent, IoRequest, PowerAction, ReqKind};
pub use gen::{generate, GenSource, GenStream, TraceGenConfig};
pub use mix::{merge_tenants, merge_tenants_chunked, tenant_timeline, TenantEvent, TenantStream};
pub use run::{
    collect_runs, compress, compress_stream, CompressStream, IoTemplate, LowerStream, REvent, Run,
    RunSource, RunStream, RunTrace, RunTraceStream, MAX_ROTATION,
};
pub use rungen::{generate_runs, RunGenSource, RunGenStream};
pub use stream::{
    collect, demux, Demuxed, EventSource, EventStream, TimedEvent, TraceStream,
    DEFAULT_CHUNK_EVENTS,
};
pub use trace::{Trace, TraceStats};
