//! Analytic trace generation: closed-form chunk-boundary crossings.
//!
//! The per-iteration walk in [`crate::gen`] evaluates every affine
//! reference at every iteration — O(iterations) work to discover a
//! request count that is orders of magnitude smaller (one fetch per
//! chunk). For the common case the paper's compiler handles — affine
//! subscripts whose linearized element index is itself affine in the
//! *flat* iteration number — the next cache miss is the solution of a
//! one-variable linear inequality, so the generator can jump from miss
//! to miss in O(1) per miss (DESIGN.md §11).
//!
//! Exactness: between two misses the buffer cache is static by
//! construction (no ref misses, so no fetch, so no cache change), and at
//! a miss iteration the analytic path replays the walk's per-iteration
//! body verbatim — same ref order, same cache checks, and the shared
//! [`crate::gen::flush_compute`] / [`crate::gen::emit_chunk_fetch`]
//! helpers — so the emitted event sequence is byte-identical to
//! [`crate::gen::generate`]'s. A nest whose references are not affine in
//! the flat iteration (e.g. a column-major scan of a row-major array,
//! where `elem = cols·(flat mod rows) + flat div rows`) falls back to the
//! per-iteration walk for that nest only.

use crate::event::AppEvent;
use crate::gen::{
    emit_chunk_fetch, flush_compute, linrefs_of, LinRef, TraceGenConfig, ITERS_PER_STEP,
};
use crate::run::{collect_runs, CompressStream, RunSource, RunStream, RunTrace};
use crate::stream::{EventSource, EventStream, DEFAULT_CHUNK_EVENTS};
use sdpm_ir::walk::walk_nest_range;
use sdpm_ir::{LoopNest, Program};
use sdpm_layout::DiskPool;

/// A reference whose linearized element index is affine in the flat
/// iteration number: `elem(flat) = base + slope·flat`.
struct AffRef {
    array: usize,
    kind: crate::event::ReqKind,
    base: i128,
    slope: i128,
}

/// Per-nest generation strategy.
enum NestPlan {
    /// Every reference is affine in flat: jump from miss to miss.
    Affine(Vec<AffRef>),
    /// At least one reference is not: per-iteration walk for this nest.
    Walk,
}

/// `ceil(a / b)` for `b > 0` over `i128`.
fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i128::from(a.rem_euclid(b) != 0)
}

/// Expresses `lin` as `base + slope·flat` when the nest's odometer makes
/// that exact, i.e. when `coeff_d·step_d == slope·weight_d` for every
/// loop with more than one iteration (`weight_d` = product of the trip
/// counts of the loops nested inside `d`).
fn affine_in_flat(nest: &LoopNest, lin: &sdpm_ir::AffineExpr) -> Option<(i128, i128)> {
    let depth = nest.loops.len();
    // weight_d = product of inner trip counts, outermost first.
    let mut weights = vec![1i128; depth];
    let mut acc = 1i128;
    for d in (0..depth).rev() {
        weights[d] = acc;
        acc = acc.checked_mul(i128::from(nest.loops[d].count))?;
    }
    let coeff = |d: usize| i128::from(*lin.coeffs.get(d).unwrap_or(&0));
    // Slope fixed by the innermost loop that actually varies.
    let mut slope = 0i128;
    for d in (0..depth).rev() {
        if nest.loops[d].count > 1 {
            let contrib = coeff(d).checked_mul(i128::from(nest.loops[d].step))?;
            if contrib % weights[d] != 0 {
                return None;
            }
            slope = contrib / weights[d];
            break;
        }
    }
    for (d, &w) in weights.iter().enumerate().take(depth) {
        if nest.loops[d].count <= 1 {
            continue;
        }
        let contrib = coeff(d).checked_mul(i128::from(nest.loops[d].step))?;
        if slope.checked_mul(w)? != contrib {
            return None;
        }
    }
    let mut base = i128::from(lin.constant);
    for d in 0..depth {
        base = base.checked_add(coeff(d).checked_mul(i128::from(nest.loops[d].lower))?)?;
    }
    Some((base, slope))
}

/// Builds the per-nest plan: affine descriptors for every reference, or
/// the walk fallback if any reference resists.
fn plan_nest(nest: &LoopNest, linrefs: &[LinRef]) -> NestPlan {
    let mut refs = Vec::with_capacity(linrefs.len());
    for lr in linrefs {
        match affine_in_flat(nest, &lr.lin) {
            Some((base, slope)) => refs.push(AffRef {
                array: lr.array,
                kind: lr.kind,
                base,
                slope,
            }),
            None => return NestPlan::Walk,
        }
    }
    NestPlan::Affine(refs)
}

/// The analytic generator as a lazy [`EventStream`]: byte-identical
/// output to [`crate::gen::GenStream`], produced in O(1) per cache miss
/// on affine nests.
pub struct RunGenStream<'a> {
    program: &'a Program,
    pool: DiskPool,
    config: TraceGenConfig,
    cached_chunk: Vec<Option<u64>>,
    next_block: Vec<Option<u64>>,
    ni: usize,
    pos: u64,
    pending_start: u64,
    linrefs: Vec<LinRef>,
    plan: NestPlan,
    buf: Vec<AppEvent>,
    target: usize,
    counted: u64,
    learn: Option<&'a std::cell::Cell<Option<u64>>>,
}

impl<'a> RunGenStream<'a> {
    /// Opens an analytic generator stream over `program`.
    ///
    /// # Panics
    /// If the program fails [`Program::validate`] or the I/O chunk size
    /// is zero.
    #[must_use]
    pub fn new(program: &'a Program, pool: DiskPool, config: TraceGenConfig) -> Self {
        assert!(config.io_chunk_bytes > 0, "chunk size must be positive");
        if let Err(e) = program.validate(pool) {
            panic!("trace generation requires a valid program: {e}");
        }
        let (linrefs, plan) = if program.nests.is_empty() {
            (Vec::new(), NestPlan::Affine(Vec::new()))
        } else {
            let linrefs = linrefs_of(program, 0);
            let plan = plan_nest(&program.nests[0], &linrefs);
            (linrefs, plan)
        };
        RunGenStream {
            program,
            pool,
            config,
            cached_chunk: vec![None; program.arrays.len()],
            next_block: vec![None; pool.count() as usize],
            ni: 0,
            pos: 0,
            pending_start: 0,
            linrefs,
            plan,
            buf: Vec::new(),
            target: DEFAULT_CHUNK_EVENTS,
            counted: 0,
            learn: None,
        }
    }

    /// First iteration `>= pos` at which `r` misses the cache, assuming
    /// the cache does not change before then (guaranteed: no ref misses
    /// earlier, so nothing fetches). `total` means "never within this
    /// nest".
    fn next_miss(&self, r: &AffRef, pos: u64, total: u64) -> u64 {
        let eb = i128::from(self.program.arrays[r.array].element_bytes);
        let cb = i128::from(self.config.io_chunk_bytes);
        let Some(c) = self.cached_chunk[r.array] else {
            return pos;
        };
        let c = i128::from(c);
        let elem_at = |f: u64| r.base + r.slope * i128::from(f);
        let chunk_of = |f: u64| (elem_at(f) * eb).div_euclid(cb);
        if chunk_of(pos) != c {
            return pos;
        }
        if r.slope == 0 {
            return total;
        }
        let f = if r.slope > 0 {
            // First f with elem·eb ≥ (c+1)·cb.
            let lo_elem = ceil_div((c + 1) * cb, eb);
            ceil_div(lo_elem - r.base, r.slope)
        } else {
            // First f with elem·eb ≤ c·cb − 1; impossible when c == 0.
            if c == 0 {
                return total;
            }
            let hi_elem = (c * cb - 1).div_euclid(eb);
            ceil_div(r.base - hi_elem, -r.slope)
        };
        debug_assert!(f > i128::from(pos));
        u64::try_from(f).map_or(total, |f| f.min(total))
    }

    /// Processes the next miss iteration of the current (affine) nest, or
    /// finishes the nest when no reference misses again. Replays the
    /// walk's per-iteration body at the miss, so cache effects between
    /// references sharing an array are exact.
    fn step_affine(&mut self) {
        let ni = self.ni;
        let iter_secs = self.program.iter_secs(ni);
        let total = self.program.nests[ni].iter_count();
        let NestPlan::Affine(refs) = &self.plan else {
            unreachable!("step_affine on a walk-planned nest");
        };
        let mut m = total;
        for r in refs {
            if self.pos >= total {
                break;
            }
            m = m.min(self.next_miss(r, self.pos, total));
        }
        if m >= total {
            self.finish_nest(total, iter_secs);
            return;
        }
        // Replay the walk's body at iteration m, ref by ref.
        let RunGenStream {
            program,
            pool,
            config,
            cached_chunk,
            next_block,
            pending_start,
            plan,
            buf,
            ..
        } = self;
        let NestPlan::Affine(refs) = plan else {
            unreachable!();
        };
        for r in refs.iter() {
            let file = &program.arrays[r.array];
            let elem = r.base + r.slope * i128::from(m);
            // Non-negative and in `u64` range by `Program::validate`; a
            // violation is a caller contract breach, reported loudly.
            let byte = u64::try_from(elem)
                .unwrap_or_else(|_| panic!("out-of-range element index {elem}"))
                * file.element_bytes;
            let chunk = byte / config.io_chunk_bytes;
            if cached_chunk[r.array] == Some(chunk) {
                continue;
            }
            cached_chunk[r.array] = Some(chunk);
            flush_compute(buf, ni, pending_start, m, iter_secs);
            emit_chunk_fetch(file, *pool, config, next_block, buf, ni, m, r.kind, chunk);
        }
        self.pos = m + 1;
    }

    /// Walk fallback: identical to [`crate::gen::GenStream::step`].
    fn step_walk(&mut self) {
        let ni = self.ni;
        let pos = self.pos;
        let iter_secs = self.program.iter_secs(ni);
        let RunGenStream {
            program,
            pool,
            config,
            cached_chunk,
            next_block,
            pending_start,
            linrefs,
            buf,
            ..
        } = self;
        let nest = &program.nests[ni];
        let total = nest.iter_count();
        let step_to = pos.saturating_add(ITERS_PER_STEP).min(total);
        walk_nest_range(nest, pos, step_to, |flat, ivars| {
            for lr in linrefs.iter() {
                let file = &program.arrays[lr.array];
                let elem = lr.lin.eval(ivars);
                // Non-negative by `Program::validate`; a violation is a
                // caller contract breach, reported loudly.
                let byte = u64::try_from(elem)
                    .unwrap_or_else(|_| panic!("negative element index {elem}"))
                    * file.element_bytes;
                let chunk = byte / config.io_chunk_bytes;
                if cached_chunk[lr.array] == Some(chunk) {
                    continue;
                }
                cached_chunk[lr.array] = Some(chunk);
                flush_compute(buf, ni, pending_start, flat, iter_secs);
                emit_chunk_fetch(
                    file, *pool, config, next_block, buf, ni, flat, lr.kind, chunk,
                );
            }
        });
        self.pos = step_to;
        if step_to >= total {
            self.finish_nest(total, iter_secs);
        }
    }

    /// Flushes the nest's tail compute and advances to the next nest.
    fn finish_nest(&mut self, total: u64, iter_secs: f64) {
        let ni = self.ni;
        flush_compute(&mut self.buf, ni, &mut self.pending_start, total, iter_secs);
        self.ni += 1;
        self.pos = 0;
        self.pending_start = 0;
        if self.ni < self.program.nests.len() {
            self.linrefs = linrefs_of(self.program, self.ni);
            self.plan = plan_nest(&self.program.nests[self.ni], &self.linrefs);
        }
    }

    fn step(&mut self) {
        match self.plan {
            NestPlan::Affine(_) => self.step_affine(),
            NestPlan::Walk => self.step_walk(),
        }
    }
}

impl EventStream for RunGenStream<'_> {
    fn name(&self) -> &str {
        &self.program.name
    }

    fn pool_size(&self) -> u32 {
        self.pool.count()
    }

    fn next_chunk(&mut self) -> Option<&[AppEvent]> {
        self.buf.clear();
        while self.buf.len() < self.target && self.ni < self.program.nests.len() {
            self.step();
        }
        if self.buf.is_empty() {
            if let Some(cell) = self.learn {
                cell.set(Some(self.counted));
            }
            None
        } else {
            self.counted += self.buf.len() as u64;
            crate::prof::add("gen.events", self.buf.len() as u64);
            crate::prof::add("gen.chunks", 1);
            Some(&self.buf)
        }
    }
}

/// A re-openable analytic generator source. Serves both interfaces: as an
/// [`EventSource`] it streams per-event output (byte-identical to
/// [`crate::gen::GenSource`]); as a [`RunSource`] it run-compresses that
/// output on the fly, which is what the O(#runs) simulator consumes.
pub struct RunGenSource<'a> {
    program: &'a Program,
    pool: DiskPool,
    config: TraceGenConfig,
    learned: std::cell::Cell<Option<u64>>,
}

impl<'a> RunGenSource<'a> {
    /// # Panics
    /// If the program fails [`Program::validate`] or the I/O chunk size
    /// is zero.
    #[must_use]
    pub fn new(program: &'a Program, pool: DiskPool, config: TraceGenConfig) -> Self {
        assert!(config.io_chunk_bytes > 0, "chunk size must be positive");
        if let Err(e) = program.validate(pool) {
            panic!("trace generation requires a valid program: {e}");
        }
        RunGenSource {
            program,
            pool,
            config,
            learned: std::cell::Cell::new(None),
        }
    }
}

impl EventSource for RunGenSource<'_> {
    fn open(&self) -> Box<dyn EventStream + '_> {
        let mut s = RunGenStream::new(self.program, self.pool, self.config);
        s.learn = Some(&self.learned);
        Box::new(s)
    }

    fn size_hint(&self) -> Option<u64> {
        self.learned.get()
    }
}

impl RunSource for RunGenSource<'_> {
    fn open_runs(&self) -> Box<dyn RunStream + '_> {
        Box::new(CompressStream::new(RunGenStream::new(
            self.program,
            self.pool,
            self.config,
        )))
    }
}

/// Generates the run-compressed trace of `program` against `pool`
/// analytically; lowering it reproduces [`crate::gen::generate`]'s trace
/// byte for byte.
///
/// # Panics
/// If the program fails [`Program::validate`] or the chunk size is zero.
#[must_use]
pub fn generate_runs(program: &Program, pool: DiskPool, config: TraceGenConfig) -> RunTrace {
    let _sp = crate::prof::span("trace.gen.analytic");
    collect_runs(&mut CompressStream::new(RunGenStream::new(
        program, pool, config,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::stream::collect;
    use sdpm_ir::{AffineExpr, ArrayRef, LoopDim, LoopNest, Statement};
    use sdpm_layout::{ArrayFile, DiskId, StorageOrder, Striping};

    fn file(name: &str, dims: Vec<u64>, base_block: u64) -> ArrayFile {
        ArrayFile {
            name: name.into(),
            dims,
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 4,
                stripe_bytes: 16 * 1024,
            },
            base_block,
        }
    }

    fn cfg(chunk: u64, seq: bool) -> TraceGenConfig {
        TraceGenConfig {
            io_chunk_bytes: chunk,
            detect_sequential: seq,
        }
    }

    fn assert_analytic_matches_walk(p: &Program, pool: DiskPool, config: TraceGenConfig) {
        let walked = generate(p, pool, config);
        let analytic = collect(&mut RunGenStream::new(p, pool, config));
        assert_eq!(analytic, walked);
        assert_eq!(generate_runs(p, pool, config).lower(), walked);
    }

    #[test]
    fn forward_scan_matches_walk() {
        let p = Program {
            name: "scan".into(),
            arrays: vec![file("A", vec![8192], 0)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim::simple(8192)],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        let pool = DiskPool::new(4);
        assert_analytic_matches_walk(&p, pool, cfg(8 * 1024, false));
        assert_analytic_matches_walk(&p, pool, cfg(8 * 1024, true));
        assert_analytic_matches_walk(&p, pool, cfg(32 * 1024, false));
    }

    #[test]
    fn two_d_row_major_scan_matches_walk() {
        // elem = 128·i + j over a 64×128 array: affine in flat with slope 1.
        let p = Program {
            name: "scan2d".into(),
            arrays: vec![file("A", vec![64, 128], 0)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim::simple(64), LoopDim::simple(128)],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![ArrayRef::read(
                        0,
                        vec![AffineExpr::var(2, 0), AffineExpr::var(2, 1)],
                    )],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        assert_analytic_matches_walk(&p, DiskPool::new(4), cfg(4 * 1024, false));
    }

    #[test]
    fn strided_and_offset_refs_match_walk() {
        // A[2i + 5]: slope 2 with a base offset.
        let p = Program {
            name: "stride2".into(),
            arrays: vec![file("A", vec![8192], 0)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim::simple(4000)],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![ArrayRef::read(0, vec![AffineExpr::scaled_var(1, 0, 2, 5)])],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        assert_analytic_matches_walk(&p, DiskPool::new(4), cfg(4 * 1024, false));
    }

    #[test]
    fn negative_step_scan_matches_walk() {
        // for i = 8191 downto 0: A[i] — negative slope in flat.
        let p = Program {
            name: "revscan".into(),
            arrays: vec![file("A", vec![8192], 0)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim {
                    lower: 8191,
                    count: 8192,
                    step: -1,
                }],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        assert_analytic_matches_walk(&p, DiskPool::new(4), cfg(8 * 1024, false));
    }

    #[test]
    fn multiple_arrays_and_shared_arrays_match_walk() {
        // Two arrays plus a second ref to the first (cache interaction
        // between refs sharing an array).
        let p = Program {
            name: "multi".into(),
            arrays: vec![file("A", vec![8192], 0), file("B", vec![8192], 1 << 20)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim::simple(8192)],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![
                        ArrayRef::read(0, vec![AffineExpr::var(1, 0)]),
                        ArrayRef::read(1, vec![AffineExpr::var(1, 0)]),
                        ArrayRef::write(0, vec![AffineExpr::var(1, 0)]),
                    ],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        assert_analytic_matches_walk(&p, DiskPool::new(4), cfg(8 * 1024, true));
    }

    #[test]
    fn column_scan_falls_back_to_walk_and_matches() {
        // A[j][i] with i outer, j inner over a row-major array: elem =
        // 128·j + i is NOT affine in flat — the plan must fall back.
        let p = Program {
            name: "colscan".into(),
            arrays: vec![file("A", vec![128, 64], 0)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim::simple(64), LoopDim::simple(128)],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![ArrayRef::read(
                        0,
                        vec![AffineExpr::var(2, 1), AffineExpr::var(2, 0)],
                    )],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        let linrefs = linrefs_of(&p, 0);
        assert!(matches!(plan_nest(&p.nests[0], &linrefs), NestPlan::Walk));
        assert_analytic_matches_walk(&p, DiskPool::new(4), cfg(4 * 1024, false));
    }

    #[test]
    fn multi_nest_programs_match_walk_across_boundaries() {
        let scan_nest = LoopNest {
            label: "n".into(),
            loops: vec![LoopDim::simple(8192)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
            }],
            cycles_per_iter: 750.0,
        };
        let col_nest = LoopNest {
            label: "c".into(),
            loops: vec![LoopDim::simple(64), LoopDim::simple(128)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![ArrayRef::read(
                    1,
                    vec![AffineExpr::var(2, 1), AffineExpr::var(2, 0)],
                )],
            }],
            cycles_per_iter: 500.0,
        };
        let p = Program {
            name: "mixed".into(),
            arrays: vec![file("A", vec![8192], 0), file("B", vec![128, 64], 1 << 20)],
            nests: vec![scan_nest.clone(), col_nest, scan_nest],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        assert_analytic_matches_walk(&p, DiskPool::new(4), cfg(8 * 1024, true));
    }

    #[test]
    fn rungen_source_reopens_and_serves_both_interfaces() {
        let p = Program {
            name: "scan".into(),
            arrays: vec![file("A", vec![8192], 0)],
            nests: vec![LoopNest {
                label: "n".into(),
                loops: vec![LoopDim::simple(8192)],
                stmts: vec![Statement {
                    label: "S".into(),
                    refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
                }],
                cycles_per_iter: 750.0,
            }],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        let pool = DiskPool::new(4);
        let config = cfg(8 * 1024, false);
        let src = RunGenSource::new(&p, pool, config);
        assert_eq!(src.size_hint(), None, "size unknown before a drain");
        let a = collect(&mut *EventSource::open(&src));
        assert_eq!(src.size_hint(), Some(a.events.len() as u64));
        let b = collect_runs(&mut *src.open_runs());
        assert_eq!(b.lower(), a);
        assert_eq!(a, generate(&p, pool, config));
    }
}
