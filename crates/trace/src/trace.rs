//! Whole traces: provenance, statistics, and the paper's 4-tuple view.

use crate::event::{AppEvent, IoRequest, ReqKind};
use sdpm_layout::DiskId;
use serde::{Deserialize, Serialize};

/// A complete application trace: the event stream plus the pool size it
/// was generated against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Application name the trace came from.
    pub name: String,
    /// Disk pool size the striping was resolved against.
    pub pool_size: u32,
    /// Events in program order.
    pub events: Vec<AppEvent>,
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of I/O requests.
    pub requests: u64,
    /// Total bytes requested.
    pub bytes: u64,
    /// Requests per disk (indexed by disk id).
    pub per_disk_requests: Vec<u64>,
    /// Pure compute seconds (no stalls).
    pub compute_secs: f64,
    /// Number of power-management calls in the stream.
    pub power_calls: u64,
    /// Fraction of requests marked sequential.
    pub sequential_fraction: f64,
}

impl Trace {
    /// Computes aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut requests = 0u64;
        let mut bytes = 0u64;
        let mut per_disk = vec![0u64; self.pool_size as usize];
        let mut compute_secs = 0.0;
        let mut power_calls = 0u64;
        let mut sequential = 0u64;
        for e in &self.events {
            match e {
                AppEvent::Compute { secs, .. } => compute_secs += secs,
                AppEvent::Io(r) => {
                    requests += 1;
                    bytes += r.size_bytes;
                    per_disk[r.disk.0 as usize] += 1;
                    if r.sequential {
                        sequential += 1;
                    }
                }
                AppEvent::Power { .. } => power_calls += 1,
            }
        }
        TraceStats {
            requests,
            bytes,
            per_disk_requests: per_disk,
            compute_secs,
            power_calls,
            sequential_fraction: if requests == 0 {
                0.0
            } else {
                sequential as f64 / requests as f64
            },
        }
    }

    /// The paper's trace view: `(arrival ms, start block, size bytes,
    /// kind, disk)` per request, with arrivals on the *nominal* (stall-
    /// free) timeline — compute time only, as if every request completed
    /// instantaneously.
    #[must_use]
    pub fn nominal_arrivals(&self) -> Vec<(f64, u64, u64, ReqKind, DiskId)> {
        let mut t = 0.0f64;
        let mut out = Vec::new();
        for e in &self.events {
            match e {
                AppEvent::Compute { secs, .. } => t += secs,
                AppEvent::Io(r) => out.push((t * 1e3, r.start_block, r.size_bytes, r.kind, r.disk)),
                AppEvent::Power { .. } => {}
            }
        }
        out
    }

    /// Iterates just the I/O requests, in order.
    pub fn requests(&self) -> impl Iterator<Item = &IoRequest> {
        self.events.iter().filter_map(|e| match e {
            AppEvent::Io(r) => Some(r),
            _ => None,
        })
    }

    /// Structural sanity: disks in range, compute segments non-negative
    /// and in nest order, request sizes positive.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_nest = 0usize;
        for (i, e) in self.events.iter().enumerate() {
            match e {
                AppEvent::Compute { nest, secs, .. } => {
                    if *secs < 0.0 || !secs.is_finite() {
                        return Err(format!("event {i}: bad compute duration {secs}"));
                    }
                    if *nest < last_nest {
                        return Err(format!(
                            "event {i}: nest order regressed {last_nest} -> {nest}"
                        ));
                    }
                    last_nest = *nest;
                }
                AppEvent::Io(r) => {
                    if r.disk.0 >= self.pool_size {
                        return Err(format!("event {i}: disk {} out of pool", r.disk));
                    }
                    if r.size_bytes == 0 {
                        return Err(format!("event {i}: zero-byte request"));
                    }
                    if r.nest < last_nest {
                        return Err(format!(
                            "event {i}: nest order regressed {last_nest} -> {}",
                            r.nest
                        ));
                    }
                    last_nest = r.nest;
                }
                AppEvent::Power { disk, .. } => {
                    if disk.0 >= self.pool_size {
                        return Err(format!("event {i}: power call on out-of-pool {disk}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PowerAction;

    fn io(disk: u32, block: u64, size: u64, nest: usize, seq: bool) -> AppEvent {
        AppEvent::Io(IoRequest {
            disk: DiskId(disk),
            start_block: block,
            size_bytes: size,
            kind: ReqKind::Read,
            sequential: seq,
            nest,
            iter: 0,
        })
    }

    fn compute(nest: usize, secs: f64) -> AppEvent {
        AppEvent::Compute {
            nest,
            first_iter: 0,
            iters: 1,
            secs,
        }
    }

    fn sample() -> Trace {
        Trace {
            name: "t".into(),
            pool_size: 4,
            events: vec![
                compute(0, 1.0),
                io(0, 100, 4096, 0, false),
                compute(0, 0.5),
                io(1, 100, 8192, 0, false),
                AppEvent::Power {
                    disk: DiskId(2),
                    action: PowerAction::SpinDown,
                },
                compute(1, 2.0),
                io(0, 108, 4096, 1, true),
            ],
        }
    }

    #[test]
    fn stats_aggregate_correctly() {
        let s = sample().stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.bytes, 16384);
        assert_eq!(s.per_disk_requests, vec![2, 1, 0, 0]);
        assert!((s.compute_secs - 3.5).abs() < 1e-12);
        assert_eq!(s.power_calls, 1);
        assert!((s.sequential_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_arrivals_accumulate_compute_only() {
        let arr = sample().nominal_arrivals();
        assert_eq!(arr.len(), 3);
        assert!((arr[0].0 - 1000.0).abs() < 1e-9);
        assert!((arr[1].0 - 1500.0).abs() < 1e-9);
        assert!((arr[2].0 - 3500.0).abs() < 1e-9);
        assert_eq!(arr[2].1, 108);
    }

    #[test]
    fn validate_accepts_sample() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_pool_disk() {
        let mut t = sample();
        t.pool_size = 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_nest_regression() {
        let mut t = sample();
        t.events.push(compute(0, 1.0)); // nest 0 after nest 1
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_byte_request() {
        let mut t = sample();
        t.events.push(io(0, 0, 0, 1, false));
        assert!(t.validate().is_err());
    }

    #[test]
    fn requests_iterator_skips_non_io() {
        let t = sample();
        assert_eq!(t.requests().count(), 3);
    }
}
