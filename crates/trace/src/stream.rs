//! Pull-based, chunked event streaming.
//!
//! The materialized [`Trace`] scales memory with trace length × however
//! many consumers hold one. This module decouples production from
//! consumption: an [`EventStream`] hands out events in bounded chunks,
//! so a consumer's working set is one chunk regardless of trace length.
//! Three sources implement it:
//!
//! * [`TraceStream`] — chunked windows over a materialized [`Trace`]
//!   (back-compat; zero-copy),
//! * [`crate::gen::GenStream`] — the trace generator itself, emitting
//!   events as the iteration-space walk discovers them (the trace is
//!   never fully resident),
//! * [`crate::codec::DecodeStream`] — incremental decode of the `SDPM`
//!   binary format (one chunk of events resident at a time).
//!
//! [`EventSource`] abstracts *re-openable* streams: the oracle policies
//! replay a trace twice (Base pass, then schedule replay), so the
//! simulator needs to open a fresh stream per pass.
//!
//! [`demux`] splits one stream into per-disk substreams that share the
//! nominal (compute-only) timeline — the per-disk view that open-loop
//! replay and per-disk analyses consume.

use crate::codec::CodecError;
use crate::event::AppEvent;
use crate::trace::Trace;

/// Default chunk size, in events. Large enough that per-chunk overhead
/// (a virtual call and a bounds check) is noise next to per-event
/// simulation work; small enough that a chunk stays cache-resident.
pub const DEFAULT_CHUNK_EVENTS: usize = 4096;

/// A pull-based, chunked event stream.
///
/// Implementors hand out events in program order, a chunk at a time; the
/// returned slice is valid until the next call (a lending iterator). The
/// stream is exhausted when `next_chunk` returns `None`; calling it
/// again after that stays `None`.
pub trait EventStream {
    /// Application name the events came from.
    fn name(&self) -> &str;

    /// Disk pool size the events were generated against.
    fn pool_size(&self) -> u32;

    /// The next chunk of events, or `None` when exhausted. Chunks are
    /// non-empty.
    fn next_chunk(&mut self) -> Option<&[AppEvent]>;

    /// Fallible variant of [`EventStream::next_chunk`]. Most streams
    /// cannot fail and inherit this default; streams over untrusted
    /// bytes ([`crate::codec::DecodeStream`]) override it to surface
    /// corruption as a [`CodecError`] instead of panicking, which is
    /// what the panic-free simulation entry points consume.
    fn try_next_chunk(&mut self) -> Result<Option<&[AppEvent]>, CodecError> {
        Ok(self.next_chunk())
    }
}

/// A stream factory: something that can be replayed from the start any
/// number of times. The oracle policies run a trace twice (Base pass to
/// recover gaps, then schedule replay), so the simulator requires a
/// source, not a one-shot stream.
pub trait EventSource {
    /// Opens a fresh stream positioned at the first event.
    fn open(&self) -> Box<dyn EventStream + '_>;

    /// Total events a fresh stream would deliver, when cheaply known.
    /// Consumers use this to size-gate optional machinery (the sharded
    /// simulator falls back to the sequential path on small streams);
    /// `None` means unknown, never zero.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// Chunked read-only windows over a materialized [`Trace`]. Zero-copy:
/// chunks are slices of `trace.events`.
pub struct TraceStream<'a> {
    trace: &'a Trace,
    pos: usize,
    chunk: usize,
}

impl<'a> TraceStream<'a> {
    /// Streams `trace` in [`DEFAULT_CHUNK_EVENTS`]-sized chunks.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        Self::chunked(trace, DEFAULT_CHUNK_EVENTS)
    }

    /// Streams `trace` in `chunk`-sized chunks (the last may be short).
    ///
    /// # Panics
    /// If `chunk` is zero.
    #[must_use]
    pub fn chunked(trace: &'a Trace, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        TraceStream {
            trace,
            pos: 0,
            chunk,
        }
    }
}

impl EventStream for TraceStream<'_> {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn pool_size(&self) -> u32 {
        self.trace.pool_size
    }

    fn next_chunk(&mut self) -> Option<&[AppEvent]> {
        if self.pos >= self.trace.events.len() {
            return None;
        }
        let end = (self.pos + self.chunk).min(self.trace.events.len());
        let out = &self.trace.events[self.pos..end];
        self.pos = end;
        Some(out)
    }
}

impl Trace {
    /// A chunked stream over this trace's events.
    #[must_use]
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream::new(self)
    }
}

impl EventSource for Trace {
    fn open(&self) -> Box<dyn EventStream + '_> {
        Box::new(self.stream())
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.events.len() as u64)
    }
}

/// Drains `stream` into a materialized [`Trace`].
#[must_use]
pub fn collect(stream: &mut dyn EventStream) -> Trace {
    let name = stream.name().to_string();
    let pool_size = stream.pool_size();
    let mut events = Vec::new();
    while let Some(chunk) = stream.next_chunk() {
        events.extend_from_slice(chunk);
    }
    Trace {
        name,
        pool_size,
        events,
    }
}

/// One event of a per-disk substream, stamped with its position on the
/// shared nominal timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Nominal (compute-only, stall-free) arrival time, seconds. All
    /// disks' substreams share this timeline.
    pub at_secs: f64,
    /// Global event index in the source stream. Strictly increasing
    /// within a substream and unique across substreams, so the global
    /// interleaving can be recovered by merging on `seq`.
    pub seq: u64,
    /// The event itself: `Io` or `Power` (never `Compute` — compute
    /// advances the shared timeline and belongs to no disk).
    pub event: AppEvent,
}

/// Per-disk demultiplexed view of one stream.
///
/// Invariants (see DESIGN.md §10):
/// * every `Io`/`Power` event of the source appears in exactly one
///   substream — the one of the disk it names;
/// * within a substream, events keep their source order (`seq` strictly
///   increases) and `at_secs` is non-decreasing;
/// * `at_secs` is the *nominal* timeline (compute seconds only): device
///   stalls are a simulation outcome, not a trace property, so the demux
///   is policy-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct Demuxed {
    /// Application name from the source stream.
    pub name: String,
    /// Pool size from the source stream; `per_disk.len()` equals it.
    pub pool_size: u32,
    /// Total nominal compute seconds in the stream.
    pub compute_secs: f64,
    /// One substream per disk, indexed by disk id.
    pub per_disk: Vec<Vec<TimedEvent>>,
}

/// Splits `stream` into per-disk substreams in a single pass.
///
/// # Panics
/// If an event names a disk outside the stream's pool.
#[must_use]
pub fn demux(stream: &mut dyn EventStream) -> Demuxed {
    let name = stream.name().to_string();
    let pool_size = stream.pool_size();
    let mut per_disk: Vec<Vec<TimedEvent>> = (0..pool_size).map(|_| Vec::new()).collect();
    let mut t = 0.0f64;
    let mut seq = 0u64;
    while let Some(chunk) = stream.next_chunk() {
        for event in chunk {
            match event {
                AppEvent::Compute { secs, .. } => t += secs,
                AppEvent::Io(r) => per_disk[r.disk.0 as usize].push(TimedEvent {
                    at_secs: t,
                    seq,
                    event: *event,
                }),
                AppEvent::Power { disk, .. } => per_disk[disk.0 as usize].push(TimedEvent {
                    at_secs: t,
                    seq,
                    event: *event,
                }),
            }
            seq += 1;
        }
    }
    Demuxed {
        name,
        pool_size,
        compute_secs: t,
        per_disk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IoRequest, PowerAction, ReqKind};
    use sdpm_layout::DiskId;

    fn io(disk: u32, nest: usize) -> AppEvent {
        AppEvent::Io(IoRequest {
            disk: DiskId(disk),
            start_block: 0,
            size_bytes: 4096,
            kind: ReqKind::Read,
            sequential: false,
            nest,
            iter: 0,
        })
    }

    fn compute(nest: usize, secs: f64) -> AppEvent {
        AppEvent::Compute {
            nest,
            first_iter: 0,
            iters: 1,
            secs,
        }
    }

    fn sample(n_events: usize) -> Trace {
        let mut events = Vec::new();
        for i in 0..n_events {
            if i % 3 == 0 {
                events.push(compute(0, 0.5));
            } else {
                events.push(io((i % 2) as u32, 0));
            }
        }
        Trace {
            name: "s".into(),
            pool_size: 2,
            events,
        }
    }

    #[test]
    fn trace_stream_yields_all_events_in_order() {
        let t = sample(10);
        let mut s = TraceStream::chunked(&t, 3);
        let mut got = Vec::new();
        while let Some(chunk) = s.next_chunk() {
            assert!(!chunk.is_empty());
            assert!(chunk.len() <= 3);
            got.extend_from_slice(chunk);
        }
        assert_eq!(got, t.events);
        assert!(s.next_chunk().is_none(), "stays exhausted");
    }

    #[test]
    fn empty_trace_streams_no_chunks() {
        let t = Trace {
            name: "e".into(),
            pool_size: 1,
            events: vec![],
        };
        assert!(t.stream().next_chunk().is_none());
    }

    #[test]
    fn collect_round_trips_through_a_stream() {
        let t = sample(23);
        assert_eq!(collect(&mut t.stream()), t);
    }

    #[test]
    fn source_reopens_from_the_start() {
        let t = sample(7);
        let src: &dyn EventSource = &t;
        for _ in 0..2 {
            let mut s = src.open();
            let mut n = 0;
            while let Some(chunk) = s.next_chunk() {
                n += chunk.len();
            }
            assert_eq!(n, 7);
        }
    }

    #[test]
    fn demux_partitions_events_and_shares_the_timeline() {
        let t = Trace {
            name: "d".into(),
            pool_size: 3,
            events: vec![
                compute(0, 1.0),
                io(0, 0),
                io(2, 0),
                compute(0, 2.0),
                AppEvent::Power {
                    disk: DiskId(2),
                    action: PowerAction::SpinDown,
                },
                io(0, 0),
            ],
        };
        let d = demux(&mut t.stream());
        assert_eq!(d.pool_size, 3);
        assert!((d.compute_secs - 3.0).abs() < 1e-12);
        assert_eq!(d.per_disk[0].len(), 2);
        assert_eq!(d.per_disk[1].len(), 0);
        assert_eq!(d.per_disk[2].len(), 2);
        // Shared nominal timeline.
        assert!((d.per_disk[0][0].at_secs - 1.0).abs() < 1e-12);
        assert!((d.per_disk[2][0].at_secs - 1.0).abs() < 1e-12);
        assert!((d.per_disk[2][1].at_secs - 3.0).abs() < 1e-12);
        assert!((d.per_disk[0][1].at_secs - 3.0).abs() < 1e-12);
        // seq preserves the global interleaving.
        assert_eq!(d.per_disk[0][0].seq, 1);
        assert_eq!(d.per_disk[2][0].seq, 2);
        assert_eq!(d.per_disk[2][1].seq, 4);
        assert_eq!(d.per_disk[0][1].seq, 5);
    }

    #[test]
    fn demux_invariants_hold_on_a_larger_stream() {
        let t = sample(100);
        let d = demux(&mut TraceStream::chunked(&t, 7));
        let mut total = 0;
        let mut seen = std::collections::HashSet::new();
        for sub in &d.per_disk {
            total += sub.len();
            for w in sub.windows(2) {
                assert!(w[0].seq < w[1].seq, "seq strictly increases per disk");
                assert!(w[0].at_secs <= w[1].at_secs, "timeline is monotone");
            }
            for e in sub {
                assert!(seen.insert(e.seq), "events land in exactly one substream");
                assert!(!matches!(e.event, AppEvent::Compute { .. }));
            }
        }
        let io_and_power = t
            .events
            .iter()
            .filter(|e| !matches!(e, AppEvent::Compute { .. }))
            .count();
        assert_eq!(total, io_and_power);
    }
}
