//! The application event stream.

use sdpm_disk::RpmLevel;
use sdpm_ir::NestId;
use sdpm_layout::DiskId;
use serde::{Deserialize, Serialize};

/// Read or write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    Read,
    Write,
}

/// One block-level disk I/O request.
///
/// This is the paper's trace 4-tuple — arrival time, start block, size,
/// type — in closed-loop form: instead of a fixed arrival timestamp the
/// request is positioned by the `Compute` events preceding it in the
/// stream, and additionally carries the disk it resolves to (the paper's
/// simulator re-derives this from the striping configuration; we resolve
/// it at generation time, which is the same information) and its
/// provenance in iteration space (used by the oracle policies and the
/// Table 3 misprediction accounting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Disk the request targets.
    pub disk: DiskId,
    /// Starting block number on the disk.
    pub start_block: u64,
    /// Request size in bytes.
    pub size_bytes: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// True if the request directly continues the previous request on the
    /// same disk (the service model then skips positioning).
    pub sequential: bool,
    /// Nest that issued the request.
    pub nest: NestId,
    /// Flat iteration (within the nest) that issued the request.
    pub iter: u64,
}

/// An explicit power-management call inserted by the compiler
/// (Section 3's `spin_down` / `spin_up` / `set_RPM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerAction {
    /// `spin_down(disk)` — TPM disks.
    SpinDown,
    /// `spin_up(disk)` — TPM pre-activation.
    SpinUp,
    /// `set_RPM(level, disk)` — DRPM disks (pre-activation passes the
    /// maximum level).
    SetRpm(RpmLevel),
}

/// One event of the application stream, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AppEvent {
    /// The application computes for `secs` without touching the disk
    /// subsystem; covers iterations `[first_iter, first_iter + iters)` of
    /// `nest`.
    Compute {
        nest: NestId,
        first_iter: u64,
        iters: u64,
        secs: f64,
    },
    /// A blocking disk request: the application stalls until it completes.
    Io(IoRequest),
    /// A compiler-inserted power-management call on `disk`. Non-blocking;
    /// the simulator charges the configured call overhead (`Tm` in the
    /// paper's formula (1)) as compute time.
    Power { disk: DiskId, action: PowerAction },
}

impl AppEvent {
    /// The nest this event belongs to, if any (`Power` events sit between
    /// compute segments and carry no nest of their own).
    #[must_use]
    pub fn nest(&self) -> Option<NestId> {
        match self {
            AppEvent::Compute { nest, .. } => Some(*nest),
            AppEvent::Io(r) => Some(r.nest),
            AppEvent::Power { .. } => None,
        }
    }

    /// Splits a `Compute` event at iteration `at` (absolute within the
    /// nest), returning the two halves. Seconds are split proportionally.
    ///
    /// # Panics
    /// If the event is not `Compute` or `at` is outside
    /// `(first_iter, first_iter + iters)` exclusive on both ends.
    #[must_use]
    pub fn split_compute(self, at: u64) -> (AppEvent, AppEvent) {
        match self {
            AppEvent::Compute {
                nest,
                first_iter,
                iters,
                secs,
            } => {
                assert!(
                    at > first_iter && at < first_iter + iters,
                    "split point {at} outside ({first_iter}, {})",
                    first_iter + iters
                );
                let left_iters = at - first_iter;
                let right_iters = iters - left_iters;
                let left_secs = secs * left_iters as f64 / iters as f64;
                (
                    AppEvent::Compute {
                        nest,
                        first_iter,
                        iters: left_iters,
                        secs: left_secs,
                    },
                    AppEvent::Compute {
                        nest,
                        first_iter: at,
                        iters: right_iters,
                        secs: secs - left_secs,
                    },
                )
            }
            _ => panic!("split_compute on a non-Compute event"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_compute_partitions_iterations_and_time() {
        let e = AppEvent::Compute {
            nest: 2,
            first_iter: 100,
            iters: 10,
            secs: 5.0,
        };
        let (l, r) = e.split_compute(103);
        match (l, r) {
            (
                AppEvent::Compute {
                    first_iter: fl,
                    iters: il,
                    secs: sl,
                    nest: nl,
                },
                AppEvent::Compute {
                    first_iter: fr,
                    iters: ir,
                    secs: sr,
                    ..
                },
            ) => {
                assert_eq!((fl, il, fr, ir, nl), (100, 3, 103, 7, 2));
                assert!((sl - 1.5).abs() < 1e-12);
                assert!((sl + sr - 5.0).abs() < 1e-12);
            }
            _ => panic!("split produced non-compute events"),
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn split_at_boundary_is_rejected() {
        let e = AppEvent::Compute {
            nest: 0,
            first_iter: 0,
            iters: 5,
            secs: 1.0,
        };
        let _ = e.split_compute(0);
    }

    #[test]
    #[should_panic(expected = "non-Compute")]
    fn split_io_is_rejected() {
        let e = AppEvent::Io(IoRequest {
            disk: DiskId(0),
            start_block: 0,
            size_bytes: 1,
            kind: ReqKind::Read,
            sequential: false,
            nest: 0,
            iter: 0,
        });
        let _ = e.split_compute(1);
    }

    #[test]
    fn nest_accessor() {
        let c = AppEvent::Compute {
            nest: 3,
            first_iter: 0,
            iters: 1,
            secs: 0.1,
        };
        assert_eq!(c.nest(), Some(3));
        let p = AppEvent::Power {
            disk: DiskId(1),
            action: PowerAction::SpinDown,
        };
        assert_eq!(p.nest(), None);
    }
}
