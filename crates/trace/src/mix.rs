//! Multi-tenant event merging: K per-tenant timelines, one shared pool.
//!
//! The paper (and every layer built so far) assumes one program on a
//! private [`DiskPool`](sdpm_layout::DiskPool). The scenario layer
//! (`sdpm_core::scenario`) breaks that assumption: K *tenants* — each a
//! program with its own scheme and arrival offset — share one pool, and
//! their per-disk request streams interleave. This module owns the
//! interleaving itself:
//!
//! * [`TenantStream`] — one tenant's `Io`/`Power` events on the shared
//!   wall clock (its nominal timeline shifted by the tenant's arrival
//!   offset and compressed by the mix's load factor),
//! * [`TenantEvent`] — one merged event, stamped with its tenant,
//! * [`merge_tenants`] / [`merge_tenants_chunked`] — the multi-way merge
//!   with the stable `(time, tenant, seq)` tiebreak.
//!
//! Determinism contract: the merge is a *function of the tenant streams
//! as sets*, not of buffering. Feeding the same streams in any slice
//! order, through any chunk size, yields a byte-identical merged vector
//! (`tests/props.rs` drives this with random chunk boundaries and tenant
//! orderings against the single-pass reference merge below).

use crate::event::AppEvent;
use crate::stream::TimedEvent;
use crate::trace::Trace;

/// One event of a merged multi-tenant timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantEvent {
    /// Arrival time on the shared wall clock, seconds.
    pub at_secs: f64,
    /// Tenant the event belongs to (index into the mix's tenant table).
    pub tenant: u32,
    /// The event's `seq` within its tenant stream (global event index of
    /// the tenant's source trace). `(at_secs, tenant, seq)` is the total
    /// merge order.
    pub seq: u64,
    /// The event itself: `Io` or `Power`, never `Compute` (compute time
    /// is already folded into `at_secs`).
    pub event: AppEvent,
}

/// One tenant's event timeline, ready to merge.
///
/// Invariants (checked by the merge): `events` is sorted by
/// `(at_secs, seq)` with strictly increasing `seq`, and holds no
/// `Compute` events.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStream {
    /// Tenant id; the merge tiebreak uses this, not slice position, so
    /// reordering the input slice cannot change the result.
    pub tenant: u32,
    /// The tenant's `Io`/`Power` events on the shared wall clock.
    pub events: Vec<TimedEvent>,
}

/// Builds one tenant's wall-clock timeline from its (validated) trace:
/// walks the events accumulating nominal compute time `t` and stamps
/// each `Io`/`Power` event at `offset_secs + t / load_factor`.
///
/// `load_factor` > 1 compresses the tenant's arrivals (open-loop "the
/// offered load doubled" knob); 1.0 with a zero offset reproduces the
/// nominal timeline of [`crate::stream::demux`] exactly (`0.0 + t / 1.0`
/// is bitwise `t`), which is what the degenerate single-tenant
/// bit-exactness gate relies on.
///
/// # Panics
/// If `load_factor` is not finite and positive.
#[must_use]
pub fn tenant_timeline(
    trace: &Trace,
    tenant: u32,
    offset_secs: f64,
    load_factor: f64,
) -> TenantStream {
    assert!(
        load_factor.is_finite() && load_factor > 0.0,
        "load factor must be finite and positive, got {load_factor}"
    );
    let mut t = 0.0f64;
    let mut events = Vec::new();
    for (seq, event) in trace.events.iter().enumerate() {
        match event {
            AppEvent::Compute { secs, .. } => t += secs,
            AppEvent::Io(_) | AppEvent::Power { .. } => events.push(TimedEvent {
                at_secs: offset_secs + t / load_factor,
                seq: seq as u64,
                event: *event,
            }),
        }
    }
    TenantStream { tenant, events }
}

/// Total merge order: time, then tenant id, then per-tenant sequence.
/// Times are finite by construction, so `total_cmp` agrees with the
/// arithmetic order while staying total.
fn merge_key(at_secs: f64, tenant: u32, seq: u64) -> (u64, u32, u64) {
    // total_cmp's order on non-negative finite floats equals the order
    // of their IEEE-754 bit patterns; keying on the bits keeps the
    // comparator branch-free and obviously total.
    (at_secs.to_bits(), tenant, seq)
}

fn check_stream(s: &TenantStream) {
    for w in s.events.windows(2) {
        assert!(
            w[0].at_secs <= w[1].at_secs && w[0].seq < w[1].seq,
            "tenant {} stream is not sorted by (at_secs, seq)",
            s.tenant
        );
    }
    for e in &s.events {
        assert!(
            e.at_secs.is_finite() && e.at_secs >= 0.0,
            "tenant {} has a non-finite or negative timestamp",
            s.tenant
        );
        assert!(
            !matches!(e.event, AppEvent::Compute { .. }),
            "tenant {} stream carries a Compute event",
            s.tenant
        );
    }
}

/// Single-pass reference merge: concatenate and stable-sort by
/// `(time, tenant, seq)`. The spec the chunked merge is tested against.
///
/// # Panics
/// If a stream violates the [`TenantStream`] invariants, or two streams
/// share a tenant id.
#[must_use]
pub fn merge_tenants(streams: &[TenantStream]) -> Vec<TenantEvent> {
    check_disjoint(streams);
    let mut out: Vec<TenantEvent> =
        Vec::with_capacity(streams.iter().map(|s| s.events.len()).sum());
    for s in streams {
        check_stream(s);
        out.extend(s.events.iter().map(|e| TenantEvent {
            at_secs: e.at_secs,
            tenant: s.tenant,
            seq: e.seq,
            event: e.event,
        }));
    }
    out.sort_by_key(|e| merge_key(e.at_secs, e.tenant, e.seq));
    out
}

/// K-way cursor merge that only ever inspects one bounded chunk of each
/// tenant's stream at a time — the shape a chunked
/// [`crate::stream::EventStream`] consumer sees. Byte-identical to
/// [`merge_tenants`] for every chunk size and input order, because
/// within a tenant the stream is already sorted: the head of each
/// tenant's current chunk *is* that tenant's global minimum, so chunk
/// boundaries cannot change which event wins a comparison.
///
/// # Panics
/// If `chunk` is zero, a stream violates the [`TenantStream`]
/// invariants, or two streams share a tenant id.
#[must_use]
pub fn merge_tenants_chunked(streams: &[TenantStream], chunk: usize) -> Vec<TenantEvent> {
    assert!(chunk > 0, "chunk size must be positive");
    check_disjoint(streams);
    for s in streams {
        check_stream(s);
    }
    // Tenant-id order, independent of slice order.
    let mut order: Vec<usize> = (0..streams.len()).collect();
    order.sort_by_key(|&i| streams[i].tenant);

    struct Cursor<'a> {
        stream: &'a TenantStream,
        /// Absolute position of the next unconsumed event.
        pos: usize,
        /// End of the currently visible chunk (exclusive).
        visible: usize,
    }
    let mut cursors: Vec<Cursor<'_>> = order
        .iter()
        .map(|&i| Cursor {
            stream: &streams[i],
            pos: 0,
            visible: chunk.min(streams[i].events.len()),
        })
        .collect();

    let total: usize = streams.iter().map(|s| s.events.len()).sum();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, (u64, u32, u64))> = None;
        for (ci, c) in cursors.iter_mut().enumerate() {
            if c.pos >= c.visible {
                // Pull the next chunk into view (no-op when exhausted).
                c.visible = (c.pos + chunk).min(c.stream.events.len());
                if c.pos >= c.visible {
                    continue;
                }
            }
            let e = &c.stream.events[c.pos];
            let key = merge_key(e.at_secs, c.stream.tenant, e.seq);
            if best.is_none_or(|(_, k)| key < k) {
                best = Some((ci, key));
            }
        }
        let Some((ci, _)) = best else { break };
        let c = &mut cursors[ci];
        let e = &c.stream.events[c.pos];
        out.push(TenantEvent {
            at_secs: e.at_secs,
            tenant: c.stream.tenant,
            seq: e.seq,
            event: e.event,
        });
        c.pos += 1;
    }
    out
}

fn check_disjoint(streams: &[TenantStream]) {
    for (i, a) in streams.iter().enumerate() {
        for b in &streams[i + 1..] {
            assert!(
                a.tenant != b.tenant,
                "two streams share tenant id {}",
                a.tenant
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IoRequest, PowerAction, ReqKind};
    use sdpm_layout::DiskId;

    fn io(disk: u32) -> AppEvent {
        AppEvent::Io(IoRequest {
            disk: DiskId(disk),
            start_block: 0,
            size_bytes: 4096,
            kind: ReqKind::Read,
            sequential: false,
            nest: 0,
            iter: 0,
        })
    }

    fn stream(tenant: u32, times: &[f64]) -> TenantStream {
        TenantStream {
            tenant,
            events: times
                .iter()
                .enumerate()
                .map(|(i, &t)| TimedEvent {
                    at_secs: t,
                    seq: i as u64,
                    event: io(tenant % 2),
                })
                .collect(),
        }
    }

    #[test]
    fn merge_orders_by_time_then_tenant_then_seq() {
        let a = stream(0, &[1.0, 3.0, 3.0]);
        let b = stream(1, &[1.0, 2.0, 3.0]);
        let m = merge_tenants(&[a, b]);
        let order: Vec<(u32, u64)> = m.iter().map(|e| (e.tenant, e.seq)).collect();
        assert_eq!(
            order,
            vec![(0, 0), (1, 0), (1, 1), (0, 1), (0, 2), (1, 2)],
            "ties break by tenant, then seq"
        );
        for w in m.windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
    }

    #[test]
    fn chunked_merge_matches_reference_and_ignores_input_order() {
        let a = stream(0, &[0.5, 1.5, 2.5, 2.5, 9.0]);
        let b = stream(1, &[0.5, 0.5, 2.5, 8.0]);
        let c = stream(2, &[2.5]);
        let reference = merge_tenants(&[a.clone(), b.clone(), c.clone()]);
        for chunk in [1, 2, 3, 64] {
            let forward = merge_tenants_chunked(&[a.clone(), b.clone(), c.clone()], chunk);
            let shuffled = merge_tenants_chunked(&[c.clone(), a.clone(), b.clone()], chunk);
            assert_eq!(forward, reference, "chunk={chunk}");
            assert_eq!(shuffled, reference, "chunk={chunk}, shuffled input");
        }
    }

    #[test]
    fn timeline_shifts_and_compresses() {
        let t = Trace {
            name: "t".into(),
            pool_size: 2,
            events: vec![
                AppEvent::Compute {
                    nest: 0,
                    first_iter: 0,
                    iters: 1,
                    secs: 4.0,
                },
                io(0),
                AppEvent::Power {
                    disk: DiskId(1),
                    action: PowerAction::SpinDown,
                },
            ],
        };
        let s = tenant_timeline(&t, 3, 10.0, 2.0);
        assert_eq!(s.tenant, 3);
        assert_eq!(s.events.len(), 2);
        assert!((s.events[0].at_secs - 12.0).abs() < 1e-12);
        assert_eq!(s.events[0].seq, 1);
        assert_eq!(s.events[1].seq, 2);
    }

    #[test]
    fn degenerate_timeline_is_bitwise_nominal() {
        let t = Trace {
            name: "t".into(),
            pool_size: 1,
            events: vec![
                AppEvent::Compute {
                    nest: 0,
                    first_iter: 0,
                    iters: 1,
                    secs: 0.1234567891,
                },
                io(0),
            ],
        };
        let nominal = crate::stream::demux(&mut t.stream());
        let s = tenant_timeline(&t, 0, 0.0, 1.0);
        assert_eq!(
            s.events[0].at_secs.to_bits(),
            nominal.per_disk[0][0].at_secs.to_bits(),
            "offset 0 / load 1 must not perturb the nominal timeline"
        );
    }

    #[test]
    #[should_panic(expected = "share tenant id")]
    fn duplicate_tenant_ids_are_rejected() {
        let _ = merge_tenants(&[stream(1, &[0.0]), stream(1, &[1.0])]);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn unsorted_stream_is_rejected() {
        let mut s = stream(0, &[2.0, 1.0]);
        s.events[1].seq = 5;
        let _ = merge_tenants(&[s]);
    }
}
