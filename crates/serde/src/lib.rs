//! In-tree stand-in for `serde`.
//!
//! The build container has no network access and no vendored registry, so
//! the real `serde` cannot be fetched. The repo only ever *derives*
//! `Serialize`/`Deserialize` (no serializer is ever invoked — structured
//! output goes through `sdpm-obs`'s hand-rolled JSON emitters), so this
//! stand-in provides the two marker traits and no-op derive macros that
//! keep every `#[derive(Serialize, Deserialize)]` compiling unchanged.
//!
//! If the workspace ever gains registry access, deleting `crates/serde`
//! and `crates/serde_derive` and restoring the versioned dependency in the
//! workspace manifest restores the real crate with no source changes.

#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Never implemented by the
/// no-op derive; present so trait-bound references keep compiling.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
