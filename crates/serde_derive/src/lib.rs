//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds in a fully offline container, so `serde` is
//! replaced by an in-tree stand-in (see `crates/serde`). The repo derives
//! the traits widely for API fidelity with the real crate but never calls
//! a serializer, so the derives can expand to nothing.

#![forbid(unsafe_code)]
use proc_macro::TokenStream;

/// Expands to nothing; the type simply keeps compiling with
/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the type simply keeps compiling with
/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
