//! Chrome `trace_event` export.
//!
//! Collects the event stream and writes the JSON object format consumed
//! by Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: a
//! `traceEvents` array of complete (`"X"`), instant (`"i"`), and
//! metadata (`"M"`) events.
//!
//! Layout: process 1 holds one thread (track) per disk carrying service
//! spans, power transitions, and directive instants, plus a parallel
//! `disk N idle` track per disk for the gap spans (gaps overlap the
//! transitions that happen inside them, so they get their own track).
//! Process 2 holds the pipeline phases, timed with host wall-clock
//! (phases run before/around the simulation, not on its clock).
//! Process 3 (when a [`crate::prof::Profile`] is attached via
//! [`ChromeTraceRecorder::attach_profile`]) holds the host profiling
//! tracks — one per recorded thread — so host spans render next to the
//! sim-time disk tracks in the same Perfetto view.
//!
//! Engine timestamps are simulated seconds scaled to microseconds, the
//! unit `trace_event` expects.

use crate::json::{push_escaped, push_f64};
use crate::{Event, Recorder};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::time::Instant;

const SIM_PID: u32 = 1;
const PIPELINE_PID: u32 = 2;
const HOST_PID: u32 = 3;
/// Gap tracks sit after the per-disk tracks; no pool exceeds this.
const GAP_TID_BASE: u32 = 1_000_000;

#[derive(Default)]
struct State {
    /// Pre-rendered `traceEvents` entries (JSON objects).
    out: Vec<String>,
    /// Service-span start per disk (closed-loop: at most one in flight).
    service_start: Vec<Option<(f64, u8)>>,
    /// Open pipeline phases: `(name, wall start)`.
    phases: Vec<(&'static str, f64)>,
    /// Highest disk index seen, for metadata emission.
    disks: u32,
    /// Attached host-profiling track labels, one per thread.
    host_tracks: Vec<String>,
}

/// Records a run and writes it as Chrome `trace_event` JSON.
pub struct ChromeTraceRecorder {
    epoch: Instant,
    state: RefCell<State>,
}

impl Default for ChromeTraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceRecorder {
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceRecorder {
            epoch: Instant::now(),
            state: RefCell::new(State::default()),
        }
    }

    fn wall_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Merges a host-side profiling capture (see [`crate::prof`]) into
    /// the trace as its own process: one track per recorded thread,
    /// carrying the raw span timeline with depth preserved through
    /// Perfetto's native slice nesting (spans on one track nest by
    /// containment). Call after the profiled work, before `write_to`.
    pub fn attach_profile(&self, profile: &crate::prof::Profile) {
        let mut st = self.state.borrow_mut();
        for track in &profile.tracks {
            let tid = st.host_tracks.len() as u32 + 1;
            st.host_tracks.push(track.label.clone());
            for sp in &track.spans {
                let mut s = String::new();
                s.push_str("{\"ph\":\"X\",\"name\":");
                push_escaped(&mut s, sp.name);
                let _ = write!(
                    s,
                    ",\"cat\":\"prof\",\"pid\":{HOST_PID},\"tid\":{tid},\"ts\":"
                );
                push_f64(&mut s, sp.start_us);
                s.push_str(",\"dur\":");
                push_f64(&mut s, sp.dur_us.max(0.0));
                let _ = write!(s, ",\"args\":{{\"depth\":{}}}", sp.depth);
                s.push('}');
                st.out.push(s);
            }
        }
    }

    /// Writes the complete trace JSON to `w`.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<()> {
        let st = self.state.borrow();
        w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        let mut emit = |w: &mut dyn Write, item: &str| -> io::Result<()> {
            if !first {
                w.write_all(b",")?;
            }
            first = false;
            w.write_all(b"\n")?;
            w.write_all(item.as_bytes())
        };
        // Metadata: name the processes and tracks.
        emit(
            w,
            &meta_name("process_name", SIM_PID, None, "simulated disks"),
        )?;
        emit(
            w,
            &meta_name("process_name", PIPELINE_PID, None, "compiler pipeline"),
        )?;
        if !st.host_tracks.is_empty() {
            emit(
                w,
                &meta_name("process_name", HOST_PID, None, "host profiling"),
            )?;
            for (i, label) in st.host_tracks.iter().enumerate() {
                emit(
                    w,
                    &meta_name("thread_name", HOST_PID, Some(i as u32 + 1), label),
                )?;
            }
        }
        for d in 0..st.disks {
            emit(
                w,
                &meta_name("thread_name", SIM_PID, Some(d + 1), &format!("disk {d}")),
            )?;
            emit(
                w,
                &meta_name(
                    "thread_name",
                    SIM_PID,
                    Some(GAP_TID_BASE + d),
                    &format!("disk {d} idle"),
                ),
            )?;
        }
        for item in &st.out {
            emit(w, item)?;
        }
        w.write_all(b"\n]}\n")
    }
}

fn meta_name(kind: &str, pid: u32, tid: Option<u32>, name: &str) -> String {
    let mut s = String::new();
    s.push_str("{\"ph\":\"M\",\"name\":");
    push_escaped(&mut s, kind);
    let _ = write!(s, ",\"pid\":{pid}");
    if let Some(t) = tid {
        let _ = write!(s, ",\"tid\":{t}");
    }
    s.push_str(",\"args\":{\"name\":");
    push_escaped(&mut s, name);
    s.push_str("}}");
    s
}

/// One complete ("X") span on a simulated-disk track.
fn span(name: &str, cat: &str, tid: u32, start_s: f64, end_s: f64, args: &str) -> String {
    let mut s = String::new();
    s.push_str("{\"ph\":\"X\",\"name\":");
    push_escaped(&mut s, name);
    s.push_str(",\"cat\":");
    push_escaped(&mut s, cat);
    let _ = write!(s, ",\"pid\":{SIM_PID},\"tid\":{tid},\"ts\":");
    push_f64(&mut s, start_s * 1e6);
    s.push_str(",\"dur\":");
    push_f64(&mut s, ((end_s - start_s) * 1e6).max(0.0));
    if !args.is_empty() {
        let _ = write!(s, ",\"args\":{{{args}}}");
    }
    s.push('}');
    s
}

/// One instant ("i") marker on a simulated-disk track.
fn instant(name: &str, cat: &str, tid: u32, t_s: f64, args: &str) -> String {
    let mut s = String::new();
    s.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":");
    push_escaped(&mut s, name);
    s.push_str(",\"cat\":");
    push_escaped(&mut s, cat);
    let _ = write!(s, ",\"pid\":{SIM_PID},\"tid\":{tid},\"ts\":");
    push_f64(&mut s, t_s * 1e6);
    if !args.is_empty() {
        let _ = write!(s, ",\"args\":{{{args}}}");
    }
    s.push('}');
    s
}

impl Recorder for ChromeTraceRecorder {
    #[allow(clippy::too_many_lines)]
    fn record(&self, ev: &Event) {
        let mut st = self.state.borrow_mut();
        if let Some(d) = ev.disk() {
            st.disks = st.disks.max(d.0 + 1);
        }
        let tid = |d: sdpm_layout::DiskId| d.0 + 1;
        match *ev {
            Event::RequestArrived { t, disk, bytes, .. } => {
                st.out.push(instant(
                    "request",
                    "io",
                    tid(disk),
                    t,
                    &format!("\"bytes\":{bytes}"),
                ));
            }
            Event::ServiceStart { t, disk, level } => {
                let i = disk.0 as usize;
                if st.service_start.len() <= i {
                    st.service_start.resize(i + 1, None);
                }
                st.service_start[i] = Some((t, level.0));
            }
            Event::ServiceEnd { t, disk } => {
                let i = disk.0 as usize;
                if let Some(Some((start, level))) = st.service_start.get(i).copied() {
                    st.service_start[i] = None;
                    st.out.push(span(
                        "service",
                        "io",
                        tid(disk),
                        start,
                        t,
                        &format!("\"level\":{level}"),
                    ));
                }
            }
            Event::GapOpen { .. } => {}
            Event::GapClose {
                t,
                disk,
                opened,
                level,
                standby,
            } => {
                st.out.push(span(
                    "idle gap",
                    "gap",
                    GAP_TID_BASE + disk.0,
                    opened,
                    t,
                    &format!("\"dwell_level\":{},\"standby\":{standby}", level.0),
                ));
            }
            Event::SpinDownStart { .. } | Event::SpinUpStart { .. } => {}
            Event::SpinDownComplete { t, disk, started } => {
                st.out
                    .push(span("spin_down", "power", tid(disk), started, t, ""));
            }
            Event::SpinUpComplete { t, disk, started } => {
                st.out
                    .push(span("spin_up", "power", tid(disk), started, t, ""));
            }
            Event::RpmShiftStart { .. } => {}
            Event::RpmShiftComplete {
                t,
                disk,
                started,
                level,
            } => {
                st.out.push(span(
                    "rpm_shift",
                    "power",
                    tid(disk),
                    started,
                    t,
                    &format!("\"to_level\":{}", level.0),
                ));
            }
            Event::DirectiveIssued {
                t,
                disk,
                action,
                level,
            } => {
                let args = match level {
                    Some(l) => format!("\"action\":\"{action}\",\"level\":{}", l.0),
                    None => format!("\"action\":\"{action}\""),
                };
                st.out
                    .push(instant("directive", "directive", tid(disk), t, &args));
            }
            Event::DirectiveMisfire { t, disk, cause } => {
                st.out.push(instant(
                    "misfire",
                    "directive",
                    tid(disk),
                    t,
                    &format!("\"cause\":\"{cause}\""),
                ));
            }
            Event::FaultInjected { t, disk, kind } => {
                st.out.push(instant(
                    "fault",
                    "fault",
                    tid(disk),
                    t,
                    &format!("\"kind\":\"{kind}\""),
                ));
            }
            Event::StallAccrued { t, disk, secs, .. } => {
                if secs > 0.0 {
                    let mut args = String::from("\"secs\":");
                    push_f64(&mut args, secs);
                    st.out.push(instant("stall", "stall", tid(disk), t, &args));
                }
            }
            Event::DiskEnergy { t, disk, joules } => {
                let mut args = String::from("\"joules\":");
                push_f64(&mut args, joules);
                st.out
                    .push(instant("energy", "summary", tid(disk), t, &args));
            }
            Event::RunEnd { .. } => {}
            Event::PhaseStart { phase } => {
                let now = self.wall_us();
                st.phases.push((phase, now));
            }
            Event::PhaseEnd { phase } => {
                let now = self.wall_us();
                if let Some(pos) = st.phases.iter().rposition(|(p, _)| *p == phase) {
                    let (_, start) = st.phases.remove(pos);
                    let mut s = String::new();
                    s.push_str("{\"ph\":\"X\",\"name\":");
                    push_escaped(&mut s, phase);
                    let _ = write!(
                        s,
                        ",\"cat\":\"phase\",\"pid\":{PIPELINE_PID},\"tid\":1,\"ts\":"
                    );
                    push_f64(&mut s, start);
                    s.push_str(",\"dur\":");
                    push_f64(&mut s, (now - start).max(0.0));
                    s.push('}');
                    st.out.push(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use sdpm_disk::RpmLevel;
    use sdpm_layout::DiskId;

    #[test]
    fn produces_loadable_trace_json() {
        let rec = ChromeTraceRecorder::new();
        let d = DiskId(0);
        rec.record(&Event::PhaseStart {
            phase: "simulation",
        });
        rec.record(&Event::GapOpen { t: 0.0, disk: d });
        rec.record(&Event::RequestArrived {
            t: 1.0,
            disk: d,
            bytes: 4096,
            write: false,
        });
        rec.record(&Event::GapClose {
            t: 1.0,
            disk: d,
            opened: 0.0,
            level: RpmLevel(11),
            standby: false,
        });
        rec.record(&Event::ServiceStart {
            t: 1.0,
            disk: d,
            level: RpmLevel(11),
        });
        rec.record(&Event::ServiceEnd { t: 1.1, disk: d });
        rec.record(&Event::SpinDownStart { t: 2.0, disk: d });
        rec.record(&Event::SpinDownComplete {
            t: 3.5,
            disk: d,
            started: 2.0,
        });
        rec.record(&Event::RunEnd { t: 4.0 });
        rec.record(&Event::PhaseEnd {
            phase: "simulation",
        });

        let mut buf = Vec::new();
        rec.write_to(&mut buf).unwrap();
        let v = Value::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(evs.len() >= 6);
        for e in evs {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "X" | "i" | "M"), "unexpected ph {ph}");
            assert!(e.get("name").is_some());
            if ph == "X" {
                assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
        // The service span is 0.1 s = 1e5 us.
        let svc = evs
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("service"))
            .expect("service span");
        assert!((svc.get("dur").unwrap().as_f64().unwrap() - 1e5).abs() < 1e-6);
        // The phase span landed in the pipeline process.
        let phase = evs
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("simulation"))
            .expect("phase span");
        assert_eq!(phase.get("pid").unwrap().as_u64(), Some(2));
    }
}
