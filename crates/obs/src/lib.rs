//! Structured event tracing and metrics for the disk-power simulator.
//!
//! The simulation engine and the compiler pipeline emit a stream of
//! [`Event`]s — request arrivals, service spans, idle gaps, power-state
//! transitions, directive issues and misfires, pipeline phases — into a
//! [`Recorder`]. Recorders are composable sinks:
//!
//! * [`MetricsRecorder`] — counters plus fixed log-spaced histograms
//!   (gap length, request slowdown) and a dwell-level distribution;
//! * [`JsonlRecorder`] — streams every event as one JSON line, in a
//!   byte-deterministic form (same seed and policy ⇒ identical bytes);
//! * [`ChromeTraceRecorder`] — renders the run as a Chrome
//!   `trace_event` JSON file with one timeline track per disk, loadable
//!   in Perfetto or `chrome://tracing`;
//! * [`NoopRecorder`] / [`FanoutRecorder`] — the zero-cost default and
//!   a tee to several sinks.
//!
//! The hooks in `sdpm-sim` and `sdpm-core` live behind their `obs`
//! cargo feature; with the feature off the emission sites compile away
//! entirely, so benchmark hot paths are unchanged.
//!
//! Timestamps are **simulated seconds** for engine events. Pipeline
//! phase events carry no timestamp (phases run on the host, not on the
//! simulated clock); recorders that need wall durations measure them at
//! record time.

pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod prof;
pub mod prof_stub;

pub use chrome::ChromeTraceRecorder;
pub use jsonl::JsonlRecorder;
pub use metrics::{LogHistogram, Metrics, MetricsRecorder, PerDiskMetrics};
pub use prof::Profile;

/// Binds `crate::prof` in the calling crate to the real profiling spine
/// ([`prof`]) when the caller's own `obs` feature is on, or to the
/// zero-cost stub ([`prof_stub`]) when it is off.
///
/// Invoke once at the crate root:
///
/// ```ignore
/// sdpm_obs::prof_hooks!();
/// ```
///
/// after which `crate::prof::span(..)`, `crate::prof::add(..)`,
/// `crate::prof::is_enabled()`, and `crate::prof::set_thread_label(..)`
/// all resolve — to live hooks or to `#[inline(always)]` no-ops that
/// compile away entirely. The `#[cfg]` is evaluated at the expansion
/// site, so it keys on the *consumer's* `obs` feature, which is what
/// lets one macro serve every crate without each carrying its own
/// drifting copy of the stub.
#[macro_export]
macro_rules! prof_hooks {
    () => {
        #[cfg(feature = "obs")]
        pub(crate) use ::sdpm_obs::prof;
        #[cfg(not(feature = "obs"))]
        pub(crate) use ::sdpm_obs::prof_stub as prof;
    };
}

use sdpm_disk::RpmLevel;
use sdpm_layout::DiskId;

/// One observable occurrence in a simulation run or pipeline execution.
///
/// Engine timestamps (`t`) are simulated seconds from run start.
/// Transition `*Complete` events are emitted at issue time with the
/// transition's scheduled end as their timestamp; a completion whose
/// time exceeds its disk's final horizon (the [`Event::DiskEnergy`]
/// timestamp) never actually happened (the run ended mid-transition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An I/O request reached the disk (closing any idle gap).
    RequestArrived {
        t: f64,
        disk: DiskId,
        bytes: u64,
        write: bool,
    },
    /// Service began (after any wake-up/transition wait).
    ServiceStart {
        t: f64,
        disk: DiskId,
        level: RpmLevel,
    },
    /// Service completed.
    ServiceEnd { t: f64, disk: DiskId },
    /// An idle gap opened (service completion or run start).
    GapOpen { t: f64, disk: DiskId },
    /// The gap that opened at `opened` closed at `t`; `level` is the
    /// deepest RPM level dwelt at, `standby` whether the disk spun down.
    GapClose {
        t: f64,
        disk: DiskId,
        opened: f64,
        level: RpmLevel,
        standby: bool,
    },
    /// A spin-down transition began.
    SpinDownStart { t: f64, disk: DiskId },
    /// The spin-down that began at `started` reaches standby at `t`.
    SpinDownComplete { t: f64, disk: DiskId, started: f64 },
    /// A spin-up transition began.
    SpinUpStart { t: f64, disk: DiskId },
    /// The spin-up that began at `started` reaches full speed at `t`.
    SpinUpComplete { t: f64, disk: DiskId, started: f64 },
    /// An RPM shift from `from` toward `to` began.
    RpmShiftStart {
        t: f64,
        disk: DiskId,
        from: RpmLevel,
        to: RpmLevel,
    },
    /// The shift that began at `started` settles at `level` at `t`.
    RpmShiftComplete {
        t: f64,
        disk: DiskId,
        started: f64,
        level: RpmLevel,
    },
    /// A power-management call was issued to the disk (a compiler
    /// directive or an oracle-scheduled action). `action` is one of
    /// `"spin_down"`, `"spin_up"`, `"set_rpm"`; `level` accompanies
    /// `set_rpm`.
    DirectiveIssued {
        t: f64,
        disk: DiskId,
        action: &'static str,
        level: Option<RpmLevel>,
    },
    /// A power-management action could not be applied as issued; `cause`
    /// matches `sdpm_sim::report::MisfireCause::label()`.
    DirectiveMisfire {
        t: f64,
        disk: DiskId,
        cause: &'static str,
    },
    /// The fault-injection harness perturbed this disk; `kind` matches
    /// `sdpm_fault::kind` (`"transient_service_failure"`,
    /// `"slow_spin_up"`, `"stuck_rpm"`). Emitted at the simulated time
    /// the fault takes effect.
    FaultInjected {
        t: f64,
        disk: DiskId,
        kind: &'static str,
    },
    /// A request cost `secs` beyond its full-speed service time
    /// (`slowdown` = observed response / full-speed service). Emitted
    /// once per request, at its completion time.
    StallAccrued {
        t: f64,
        disk: DiskId,
        secs: f64,
        slowdown: f64,
    },
    /// Finalization: the disk's total energy over the run. `t` is the
    /// disk's final horizon — normally the end of execution, later if
    /// the disk's last applied action landed past it. A transition
    /// `*Complete` for this disk whose time exceeds `t` never actually
    /// happened (the run ended mid-transition).
    DiskEnergy { t: f64, disk: DiskId, joules: f64 },
    /// Finalization: end of simulated execution.
    RunEnd { t: f64 },
    /// A pipeline phase (host-side work: DAP construction, break-even
    /// thresholding, directive insertion, simulation) started.
    PhaseStart { phase: &'static str },
    /// The innermost open phase with this name ended.
    PhaseEnd { phase: &'static str },
}

impl Event {
    /// Stable snake_case tag naming the variant (the JSONL `"ev"` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RequestArrived { .. } => "request_arrived",
            Event::ServiceStart { .. } => "service_start",
            Event::ServiceEnd { .. } => "service_end",
            Event::GapOpen { .. } => "gap_open",
            Event::GapClose { .. } => "gap_close",
            Event::SpinDownStart { .. } => "spin_down_start",
            Event::SpinDownComplete { .. } => "spin_down_complete",
            Event::SpinUpStart { .. } => "spin_up_start",
            Event::SpinUpComplete { .. } => "spin_up_complete",
            Event::RpmShiftStart { .. } => "rpm_shift_start",
            Event::RpmShiftComplete { .. } => "rpm_shift_complete",
            Event::DirectiveIssued { .. } => "directive_issued",
            Event::DirectiveMisfire { .. } => "directive_misfire",
            Event::FaultInjected { .. } => "fault_injected",
            Event::StallAccrued { .. } => "stall_accrued",
            Event::DiskEnergy { .. } => "disk_energy",
            Event::RunEnd { .. } => "run_end",
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
        }
    }

    /// The event's simulated timestamp, if it carries one.
    #[must_use]
    pub fn time(&self) -> Option<f64> {
        match self {
            Event::RequestArrived { t, .. }
            | Event::ServiceStart { t, .. }
            | Event::ServiceEnd { t, .. }
            | Event::GapOpen { t, .. }
            | Event::GapClose { t, .. }
            | Event::SpinDownStart { t, .. }
            | Event::SpinDownComplete { t, .. }
            | Event::SpinUpStart { t, .. }
            | Event::SpinUpComplete { t, .. }
            | Event::RpmShiftStart { t, .. }
            | Event::RpmShiftComplete { t, .. }
            | Event::DirectiveIssued { t, .. }
            | Event::DirectiveMisfire { t, .. }
            | Event::FaultInjected { t, .. }
            | Event::StallAccrued { t, .. }
            | Event::DiskEnergy { t, .. }
            | Event::RunEnd { t } => Some(*t),
            Event::PhaseStart { .. } | Event::PhaseEnd { .. } => None,
        }
    }

    /// The disk the event concerns, if any.
    #[must_use]
    pub fn disk(&self) -> Option<DiskId> {
        match self {
            Event::RequestArrived { disk, .. }
            | Event::ServiceStart { disk, .. }
            | Event::ServiceEnd { disk, .. }
            | Event::GapOpen { disk, .. }
            | Event::GapClose { disk, .. }
            | Event::SpinDownStart { disk, .. }
            | Event::SpinDownComplete { disk, .. }
            | Event::SpinUpStart { disk, .. }
            | Event::SpinUpComplete { disk, .. }
            | Event::RpmShiftStart { disk, .. }
            | Event::RpmShiftComplete { disk, .. }
            | Event::DirectiveIssued { disk, .. }
            | Event::DirectiveMisfire { disk, .. }
            | Event::FaultInjected { disk, .. }
            | Event::StallAccrued { disk, .. }
            | Event::DiskEnergy { disk, .. } => Some(*disk),
            Event::RunEnd { .. } | Event::PhaseStart { .. } | Event::PhaseEnd { .. } => None,
        }
    }
}

/// An event sink. Methods take `&self` so one recorder can be shared by
/// reference through the engine; implementations use interior mutability.
pub trait Recorder {
    /// Consumes one event.
    fn record(&self, ev: &Event);
}

/// Discards everything. The engine's default when no recorder is given.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn record(&self, _ev: &Event) {}
}

/// Tees every event to each of several recorders, in order.
#[derive(Default)]
pub struct FanoutRecorder<'a> {
    sinks: Vec<&'a dyn Recorder>,
}

impl<'a> FanoutRecorder<'a> {
    #[must_use]
    pub fn new(sinks: Vec<&'a dyn Recorder>) -> Self {
        FanoutRecorder { sinks }
    }

    /// Adds one more sink.
    pub fn push(&mut self, sink: &'a dyn Recorder) {
        self.sinks.push(sink);
    }
}

impl Recorder for FanoutRecorder<'_> {
    fn record(&self, ev: &Event) {
        for s in &self.sinks {
            s.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct Counting(Cell<u64>);
    impl Recorder for Counting {
        fn record(&self, _ev: &Event) {
            self.0.set(self.0.get() + 1);
        }
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Counting(Cell::new(0));
        let b = Counting(Cell::new(0));
        let mut tee = FanoutRecorder::new(vec![&a]);
        tee.push(&b);
        tee.record(&Event::RunEnd { t: 1.0 });
        tee.record(&Event::GapOpen {
            t: 0.0,
            disk: DiskId(3),
        });
        assert_eq!(a.0.get(), 2);
        assert_eq!(b.0.get(), 2);
    }

    #[test]
    fn kind_time_disk_accessors() {
        let ev = Event::GapClose {
            t: 5.0,
            disk: DiskId(2),
            opened: 1.0,
            level: RpmLevel(4),
            standby: false,
        };
        assert_eq!(ev.kind(), "gap_close");
        assert_eq!(ev.time(), Some(5.0));
        assert_eq!(ev.disk(), Some(DiskId(2)));
        assert_eq!(Event::PhaseStart { phase: "x" }.time(), None);
        assert_eq!(Event::RunEnd { t: 0.0 }.disk(), None);
    }
}
