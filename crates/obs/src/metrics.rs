//! Counters and fixed log-spaced histograms over the event stream.
//!
//! [`MetricsRecorder`] folds events into a [`Metrics`] value as they
//! arrive; nothing is buffered except transition completions, which are
//! only counted once the run's end reveals the disk's horizon — the
//! [`crate::Event::DiskEnergy`] timestamp, or [`crate::Event::RunEnd`]
//! for disks without one. A transition whose scheduled end falls past
//! the horizon never completed, mirroring the engine's power-state
//! machine counters exactly.

use crate::{Event, Recorder};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A histogram with logarithmically spaced bucket boundaries, plus
/// underflow/overflow buckets. Bucket `i` covers
/// `[lo * ratio^i, lo * ratio^(i+1))`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    /// `buckets + 2` counts: `[underflow, b0..b(n-1), overflow]`.
    counts: Vec<u64>,
}

impl LogHistogram {
    /// `buckets` log-spaced buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// If the span is empty or not positive.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && buckets > 0, "bad histogram span");
        LogHistogram {
            lo,
            ratio: (hi / lo).powf(1.0 / buckets as f64),
            counts: vec![0; buckets + 2],
        }
    }

    /// Records one sample. Non-finite samples count as overflow.
    pub fn record(&mut self, v: f64) {
        let n = self.counts.len() - 2;
        let i = if !(v.is_finite()) || v >= self.lo * self.ratio.powi(n as i32) {
            n + 1
        } else if v < self.lo {
            0
        } else {
            // +1 for the underflow slot; clamp against boundary rounding.
            ((v / self.lo).ln() / self.ratio.ln()) as usize + 1
        };
        let i = i.min(self.counts.len() - 1);
        self.counts[i] += 1;
    }

    /// All counts: `[underflow, buckets.., overflow]`.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `[lower, upper)` bounds of bucket `i` of `counts()` (underflow and
    /// overflow are half-open at zero/infinity).
    #[must_use]
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let n = self.counts.len() - 2;
        if i == 0 {
            (0.0, self.lo)
        } else if i > n {
            (self.lo * self.ratio.powi(n as i32), f64::INFINITY)
        } else {
            (
                self.lo * self.ratio.powi(i as i32 - 1),
                self.lo * self.ratio.powi(i as i32),
            )
        }
    }

    /// Compact one-line rendering of the non-empty buckets.
    #[must_use]
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (a, b) = self.bucket_bounds(i);
            parts.push(format!("[{a:.3e},{b:.3e}):{c}"));
        }
        if parts.is_empty() {
            "(empty)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Per-disk totals, indexed by `DiskId.0`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerDiskMetrics {
    pub requests: u64,
    pub spin_downs: u64,
    pub spin_ups: u64,
    pub rpm_shifts: u64,
    /// Summed idle-gap seconds (each gap added as `close - open`, in gap
    /// order, matching the report's per-disk summation).
    pub gap_secs: f64,
    pub stall_secs: f64,
    /// Total joules, from the finalization [`Event::DiskEnergy`].
    pub energy_j: f64,
}

/// The folded state of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    pub requests: u64,
    pub bytes: u64,
    pub writes: u64,
    /// Completed transitions (scheduled end within the run horizon).
    pub spin_downs: u64,
    pub spin_ups: u64,
    pub rpm_shifts: u64,
    pub directives_issued: u64,
    /// Misfire counts keyed by cause label.
    pub misfires: BTreeMap<&'static str, u64>,
    /// Injected-fault counts keyed by kind label (`sdpm_fault::kind`).
    pub faults: BTreeMap<&'static str, u64>,
    /// Total stall seconds, accumulated in event order (bit-identical to
    /// the engine's own accumulation).
    pub stall_secs: f64,
    pub gap_count: u64,
    /// Gaps that reached standby.
    pub standby_gaps: u64,
    pub energy_j: f64,
    /// Simulated end of execution; 0 until [`Event::RunEnd`].
    pub exec_secs: f64,
    pub per_disk: Vec<PerDiskMetrics>,
    /// Idle-gap lengths, seconds.
    pub gap_hist: LogHistogram,
    /// Per-request slowdown (response / full-speed service), so the
    /// interesting mass sits just above 1.0.
    pub slowdown_hist: LogHistogram,
    /// Gap count by deepest dwelt RPM level (index = `RpmLevel.0`).
    pub dwell_levels: Vec<u64>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: 0,
            bytes: 0,
            writes: 0,
            spin_downs: 0,
            spin_ups: 0,
            rpm_shifts: 0,
            directives_issued: 0,
            misfires: BTreeMap::new(),
            faults: BTreeMap::new(),
            stall_secs: 0.0,
            gap_count: 0,
            standby_gaps: 0,
            energy_j: 0.0,
            exec_secs: 0.0,
            per_disk: Vec::new(),
            // 1 ms .. 10^4 s, 4 buckets per decade.
            gap_hist: LogHistogram::new(1e-3, 1e4, 28),
            // 1x .. 100x, 8 buckets per decade.
            slowdown_hist: LogHistogram::new(1.0, 100.0, 16),
            dwell_levels: Vec::new(),
        }
    }
}

impl Metrics {
    /// Total misfires across causes.
    #[must_use]
    pub fn misfires_total(&self) -> u64 {
        self.misfires.values().sum()
    }

    /// Total injected faults across kinds.
    #[must_use]
    pub fn faults_total(&self) -> u64 {
        self.faults.values().sum()
    }

    fn disk(&mut self, d: sdpm_layout::DiskId) -> &mut PerDiskMetrics {
        let i = d.0 as usize;
        if self.per_disk.len() <= i {
            self.per_disk.resize(i + 1, PerDiskMetrics::default());
        }
        &mut self.per_disk[i]
    }
}

/// Pending transition completions: `(disk index, scheduled end)`.
#[derive(Debug, Default)]
struct Pending {
    spin_downs: Vec<(usize, f64)>,
    spin_ups: Vec<(usize, f64)>,
    rpm_shifts: Vec<(usize, f64)>,
}

/// Folds the event stream into [`Metrics`].
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    state: RefCell<(Metrics, Pending)>,
}

impl MetricsRecorder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The folded metrics. Accurate after [`Event::RunEnd`]; before it,
    /// every pending transition is counted as if it will complete.
    #[must_use]
    pub fn snapshot(&self) -> Metrics {
        let st = self.state.borrow();
        let mut m = st.0.clone();
        let pend = &st.1;
        for &(d, _) in &pend.spin_downs {
            m.spin_downs += 1;
            bump(&mut m, d, |p| &mut p.spin_downs);
        }
        for &(d, _) in &pend.spin_ups {
            m.spin_ups += 1;
            bump(&mut m, d, |p| &mut p.spin_ups);
        }
        for &(d, _) in &pend.rpm_shifts {
            m.rpm_shifts += 1;
            bump(&mut m, d, |p| &mut p.rpm_shifts);
        }
        m
    }
}

fn bump(m: &mut Metrics, i: usize, f: impl Fn(&mut PerDiskMetrics) -> &mut u64) {
    if m.per_disk.len() <= i {
        m.per_disk.resize(i + 1, PerDiskMetrics::default());
    }
    *f(&mut m.per_disk[i]) += 1;
}

/// Counts pending completions whose scheduled end is within horizon `t`,
/// dropping the rest. `only` restricts resolution to one disk index.
fn resolve(m: &mut Metrics, pend: &mut Pending, t: f64, only: Option<usize>) {
    let mut one = |v: &mut Vec<(usize, f64)>,
                   total: fn(&mut Metrics) -> &mut u64,
                   per: fn(&mut PerDiskMetrics) -> &mut u64| {
        v.retain(|&(d, at)| {
            if only.is_some_and(|o| o != d) {
                return true;
            }
            if at <= t {
                *total(m) += 1;
                bump(m, d, per);
            }
            false
        });
    };
    one(
        &mut pend.spin_downs,
        |m| &mut m.spin_downs,
        |p| &mut p.spin_downs,
    );
    one(&mut pend.spin_ups, |m| &mut m.spin_ups, |p| &mut p.spin_ups);
    one(
        &mut pend.rpm_shifts,
        |m| &mut m.rpm_shifts,
        |p| &mut p.rpm_shifts,
    );
}

impl Recorder for MetricsRecorder {
    fn record(&self, ev: &Event) {
        let mut st = self.state.borrow_mut();
        let (m, pend) = &mut *st;
        match *ev {
            Event::RequestArrived {
                disk, bytes, write, ..
            } => {
                m.requests += 1;
                m.bytes += bytes;
                if write {
                    m.writes += 1;
                }
                m.disk(disk).requests += 1;
            }
            Event::ServiceStart { .. } | Event::ServiceEnd { .. } | Event::GapOpen { .. } => {}
            Event::GapClose {
                t,
                disk,
                opened,
                level,
                standby,
            } => {
                let len = t - opened;
                m.gap_count += 1;
                if standby {
                    m.standby_gaps += 1;
                }
                m.gap_hist.record(len);
                let li = level.0 as usize;
                if m.dwell_levels.len() <= li {
                    m.dwell_levels.resize(li + 1, 0);
                }
                m.dwell_levels[li] += 1;
                m.disk(disk).gap_secs += len;
            }
            Event::SpinDownStart { .. }
            | Event::SpinUpStart { .. }
            | Event::RpmShiftStart { .. } => {}
            Event::SpinDownComplete { t, disk, .. } => {
                pend.spin_downs.push((disk.0 as usize, t));
            }
            Event::SpinUpComplete { t, disk, .. } => {
                pend.spin_ups.push((disk.0 as usize, t));
            }
            Event::RpmShiftComplete { t, disk, .. } => {
                pend.rpm_shifts.push((disk.0 as usize, t));
            }
            Event::DirectiveIssued { .. } => m.directives_issued += 1,
            Event::DirectiveMisfire { cause, .. } => {
                *m.misfires.entry(cause).or_insert(0) += 1;
            }
            Event::FaultInjected { kind, .. } => {
                *m.faults.entry(kind).or_insert(0) += 1;
            }
            Event::StallAccrued {
                disk,
                secs,
                slowdown,
                ..
            } => {
                m.stall_secs += secs;
                m.slowdown_hist.record(slowdown);
                m.disk(disk).stall_secs += secs;
            }
            Event::DiskEnergy { t, disk, joules } => {
                m.energy_j += joules;
                m.disk(disk).energy_j = joules;
                // The disk's final horizon is now known: resolve its
                // pending completions against it — the same `until <= t`
                // comparison the state machine's `advance` uses, so
                // counts agree bit-for-bit.
                resolve(m, pend, t, Some(disk.0 as usize));
            }
            Event::RunEnd { t } => {
                m.exec_secs = t;
                // Catch-all for disks that never saw a DiskEnergy event
                // (synthetic streams).
                resolve(m, pend, t, None);
            }
            Event::PhaseStart { .. } | Event::PhaseEnd { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_disk::RpmLevel;
    use sdpm_layout::DiskId;

    #[test]
    fn log_histogram_buckets_and_bounds() {
        let mut h = LogHistogram::new(1.0, 100.0, 4);
        // Bucket boundaries: 1, ~3.16, 10, ~31.6, 100.
        h.record(0.5); // underflow
        h.record(1.0);
        h.record(2.0);
        h.record(15.0);
        h.record(99.0);
        h.record(100.0); // overflow
        h.record(f64::INFINITY); // overflow
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 1, "underflow");
        assert_eq!(h.counts()[1], 2, "[1, 3.16)");
        assert_eq!(h.counts()[3], 1, "[10, 31.6)");
        assert_eq!(h.counts()[4], 1, "[31.6, 100)");
        assert_eq!(h.counts()[5], 2, "overflow");
        let (a, b) = h.bucket_bounds(1);
        assert!((a - 1.0).abs() < 1e-12 && (b - 100f64.powf(0.25)).abs() < 1e-9);
        assert!(h.render().contains(":2"));
    }

    #[test]
    fn transitions_count_only_within_horizon() {
        let rec = MetricsRecorder::new();
        let d = DiskId(0);
        rec.record(&Event::SpinDownComplete {
            t: 5.0,
            disk: d,
            started: 3.5,
        });
        rec.record(&Event::SpinDownComplete {
            t: 50.0,
            disk: d,
            started: 48.5,
        });
        // Before RunEnd: optimistic.
        assert_eq!(rec.snapshot().spin_downs, 2);
        rec.record(&Event::RunEnd { t: 10.0 });
        let m = rec.snapshot();
        assert_eq!(m.spin_downs, 1, "the t=50 completion never happened");
        assert_eq!(m.per_disk[0].spin_downs, 1);
        assert_eq!(m.exec_secs, 10.0);
    }

    #[test]
    fn gaps_and_stalls_fold_per_disk() {
        let rec = MetricsRecorder::new();
        rec.record(&Event::GapClose {
            t: 4.0,
            disk: DiskId(1),
            opened: 1.0,
            level: RpmLevel(2),
            standby: true,
        });
        rec.record(&Event::StallAccrued {
            t: 4.5,
            disk: DiskId(1),
            secs: 0.25,
            slowdown: 2.0,
        });
        let m = rec.snapshot();
        assert_eq!(m.gap_count, 1);
        assert_eq!(m.standby_gaps, 1);
        assert_eq!(m.dwell_levels[2], 1);
        assert!((m.per_disk[1].gap_secs - 3.0).abs() < 1e-12);
        assert!((m.stall_secs - 0.25).abs() < 1e-12);
        assert_eq!(m.slowdown_hist.total(), 1);
    }
}
