//! Inert stand-in for [`crate::prof`], mirroring its hook surface with
//! zero-sized no-ops.
//!
//! Consumer crates bind this module (or the real one) to `crate::prof`
//! via [`crate::prof_hooks!`], keyed on their own `obs` feature. With
//! the feature off every hook call site compiles against these
//! `#[inline(always)]` no-ops and vanishes entirely, so hot paths are
//! byte-identical to an unhooked build. The API must stay a strict
//! subset-compatible mirror of `prof`: same names, same signatures,
//! guard stays a ZST.

/// Inert zero-sized stand-in for `prof::SpanGuard`.
pub struct SpanGuard;

/// No-op span: returns a guard that does nothing on drop.
#[inline(always)]
#[must_use]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// No-op counter bump.
#[inline(always)]
pub fn add(_name: &'static str, _delta: u64) {}

/// No-op thread label.
#[inline(always)]
pub fn set_thread_label(_label: &str) {}

/// Always `false`: profiling can never be enabled through the stub.
#[inline(always)]
#[must_use]
pub fn is_enabled() -> bool {
    false
}

#[cfg(test)]
mod tests {
    /// The compile-away contract: the guard is a ZST and the hook
    /// functions are inlineable no-ops — a hooked hot loop compiles to
    /// the same code as an unhooked one.
    #[test]
    fn stub_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<super::SpanGuard>(), 0);
        let _g = super::span("x");
        super::add("x", 1);
        super::set_thread_label("t");
        assert!(!super::is_enabled());
    }
}
