//! Host-side profiling spine: hierarchical wall-clock spans with a
//! thread-aware collector, per-stage throughput counters, and (behind
//! the `alloc-profile` feature) allocation accounting per span.
//!
//! Simulated time already has full coverage through [`crate::Event`];
//! this module covers the *host* cost of producing it — how long the
//! walk generator, the run compressor, the codec, and the engine loops
//! actually take, and at what throughput. The two clocks meet in the
//! Chrome exporter: [`crate::ChromeTraceRecorder::attach_profile`]
//! renders the host span tree as its own process next to the sim-time
//! disk tracks.
//!
//! # Model
//!
//! * A **span** is an RAII guard ([`span`] → [`SpanGuard`]) around a
//!   region of host work. Spans nest per thread; the innermost open
//!   span on the current thread is the parent of a newly opened one.
//! * A **counter** ([`add`]) attributes a unit count (events, records,
//!   bytes, chunks) to the innermost open span of the current thread —
//!   throughput falls out as `counter / span wall time` at render time.
//! * Worker threads (the sharded simulator's replay pool) record into
//!   thread-local buffers that flush into the global collector when the
//!   thread exits; [`set_thread_label`] names the resulting track.
//! * [`take`] drains everything into a [`Profile`]: the raw per-thread
//!   tracks (for timeline export) plus one merged, deterministic span
//!   tree (aggregated by name path, children sorted by name — so the
//!   tree's *structure* is identical run to run even when worker
//!   threads race; only the measured times vary).
//!
//! Recording costs one relaxed atomic load when profiling is disabled
//! (the default). The `sdpm-trace`/`sdpm-sim`/`sdpm-core`/`sdpm-verify`
//! call sites additionally sit behind each crate's `obs` cargo feature
//! and compile away entirely when it is off.
//!
//! # Discipline
//!
//! Guards must drop in LIFO order on the thread that opened them (the
//! natural outcome of `let _g = prof::span(..)`). A guard dropped out
//! of order closes every span opened after it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::push_f64;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn collected() -> &'static Mutex<Vec<ThreadLog>> {
    static COLLECTED: OnceLock<Mutex<Vec<ThreadLog>>> = OnceLock::new();
    COLLECTED.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_collected() -> std::sync::MutexGuard<'static, Vec<ThreadLog>> {
    collected()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Turns the collector on (process-wide). Span/counter calls before
/// this (or after [`disable`]) are no-ops.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the collector off. Buffers are kept; [`take`] drains them.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the collector is currently recording.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One recorded span instance on one thread.
#[derive(Debug, Clone)]
struct SpanRec {
    name: &'static str,
    parent: Option<usize>,
    depth: u32,
    start_us: f64,
    dur_us: f64,
    counters: Vec<(&'static str, u64)>,
    alloc_bytes: u64,
    alloc_count: u64,
    peak_bytes: u64,
    open: bool,
}

/// Everything one thread recorded.
#[derive(Debug, Default, Clone)]
struct ThreadLog {
    label: Option<String>,
    spans: Vec<SpanRec>,
    stack: Vec<usize>,
    /// Counters added with no span open.
    orphan_counters: Vec<(&'static str, u64)>,
}

impl ThreadLog {
    fn add_counter(&mut self, name: &'static str, delta: u64) {
        let bucket = match self.stack.last() {
            Some(&i) => &mut self.spans[i].counters,
            None => &mut self.orphan_counters,
        };
        match bucket.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => bucket.push((name, delta)),
        }
    }
}

/// Flushes the thread's buffer into the global collector when the
/// thread exits (thread-local destructors run at exit).
struct TlsSlot(RefCell<ThreadLog>);

impl Drop for TlsSlot {
    fn drop(&mut self) {
        let log = self.0.borrow_mut();
        if !log.spans.is_empty() || !log.orphan_counters.is_empty() {
            lock_collected().push(log.clone());
        }
    }
}

thread_local! {
    static TLS: TlsSlot = TlsSlot(RefCell::new(ThreadLog::default()));
}

fn with_log<T>(f: impl FnOnce(&mut ThreadLog) -> T) -> Option<T> {
    TLS.try_with(|slot| f(&mut slot.0.borrow_mut())).ok()
}

/// Labels the current thread's track in the profile (e.g.
/// `"shard-worker-3"`). The main measurement thread defaults to
/// `"main"`; unlabeled helper threads to `"thread"`.
pub fn set_thread_label(label: &str) {
    if !is_enabled() {
        return;
    }
    let _ = with_log(|log| log.label = Some(label.to_string()));
}

/// Opens a hierarchical wall-clock span. Close it by dropping the
/// guard; timing, allocation deltas, and child spans attach to it
/// while it is the innermost open span on this thread.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { idx: None };
    }
    let start_us = epoch().elapsed().as_secs_f64() * 1e6;
    let alloc = AllocSnapshot::begin();
    let idx = with_log(|log| {
        let parent = log.stack.last().copied();
        let depth = parent.map_or(0, |p| log.spans[p].depth + 1);
        let idx = log.spans.len();
        log.spans.push(SpanRec {
            name,
            parent,
            depth,
            start_us,
            dur_us: 0.0,
            counters: Vec::new(),
            alloc_bytes: 0,
            alloc_count: 0,
            peak_bytes: 0,
            open: true,
        });
        log.stack.push(idx);
        idx
    });
    SpanGuard {
        idx: idx.map(|i| (i, alloc)),
    }
}

/// Adds `delta` to the named throughput counter of the innermost open
/// span on this thread (no-op when profiling is disabled).
pub fn add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let _ = with_log(|log| log.add_counter(name, delta));
}

/// RAII guard for one open span; see [`span`].
pub struct SpanGuard {
    idx: Option<(usize, AllocSnapshot)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((idx, alloc)) = self.idx.take() else {
            return;
        };
        let end_us = epoch().elapsed().as_secs_f64() * 1e6;
        let (bytes, count, peak) = alloc.end();
        let _ = with_log(|log| {
            // Defensive: a guard dropped out of order closes everything
            // opened after it (with the same end time).
            while let Some(top) = log.stack.pop() {
                let s = &mut log.spans[top];
                s.open = false;
                s.dur_us = (end_us - s.start_us).max(0.0);
                if top == idx {
                    s.alloc_bytes = bytes;
                    s.alloc_count = count;
                    s.peak_bytes = peak;
                    break;
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Allocation accounting (feature `alloc-profile`)
// ---------------------------------------------------------------------------

/// Allocation totals bracket for one span; zeros when the counting
/// allocator is not installed.
#[cfg(feature = "alloc-profile")]
#[derive(Debug, Clone, Copy)]
struct AllocSnapshot {
    bytes: u64,
    count: u64,
    saved_peak: u64,
}

/// Stub bracket: the `alloc-profile` feature is off, so there is
/// nothing to measure.
#[cfg(not(feature = "alloc-profile"))]
#[derive(Debug, Clone, Copy)]
struct AllocSnapshot;

#[cfg(feature = "alloc-profile")]
mod alloc_impl {
    use super::AllocSnapshot;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    pub(super) static CUR: AtomicU64 = AtomicU64::new(0);
    pub(super) static PEAK: AtomicU64 = AtomicU64::new(0);
    pub(super) static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
    pub(super) static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
    pub(super) static INSTALLED: AtomicBool = AtomicBool::new(false);

    /// A counting wrapper around the system allocator. Install it as
    /// the binary's `#[global_allocator]` to light up live/peak heap
    /// accounting ([`super::heap_mark`]) and per-span allocation deltas.
    /// Overhead is a handful of relaxed atomics per allocation.
    pub struct CountingAlloc;

    fn on_alloc(size: usize) {
        INSTALLED.store(true, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
        let cur = CUR.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK.fetch_max(cur, Ordering::Relaxed);
    }

    // SAFETY: delegates every operation to `System`; the bookkeeping
    // uses only lock-free atomics (no allocation, no reentrancy).
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            CUR.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                CUR.fetch_sub(layout.size() as u64, Ordering::Relaxed);
                on_alloc(new_size);
            }
            p
        }
    }

    impl AllocSnapshot {
        pub(super) fn begin() -> AllocSnapshot {
            if !INSTALLED.load(Ordering::Relaxed) {
                return AllocSnapshot {
                    bytes: 0,
                    count: 0,
                    saved_peak: 0,
                };
            }
            // Stack discipline for per-span peaks: park the enclosing
            // span's peak candidate and restart the watermark at the
            // current live size. Concurrent spans on other threads share
            // the watermark, so under parallelism peaks are process-wide
            // approximations — documented, and exact in the common
            // single-measurement-thread case.
            let saved_peak = PEAK.swap(CUR.load(Ordering::Relaxed), Ordering::Relaxed);
            AllocSnapshot {
                bytes: TOTAL_BYTES.load(Ordering::Relaxed),
                count: TOTAL_COUNT.load(Ordering::Relaxed),
                saved_peak,
            }
        }

        pub(super) fn end(self) -> (u64, u64, u64) {
            if !INSTALLED.load(Ordering::Relaxed) {
                return (0, 0, 0);
            }
            let peak = PEAK.load(Ordering::Relaxed);
            PEAK.fetch_max(self.saved_peak, Ordering::Relaxed);
            (
                TOTAL_BYTES
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.bytes),
                TOTAL_COUNT
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.count),
                peak,
            )
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use alloc_impl::CountingAlloc;

#[cfg(not(feature = "alloc-profile"))]
impl AllocSnapshot {
    fn begin() -> AllocSnapshot {
        AllocSnapshot
    }

    fn end(self) -> (u64, u64, u64) {
        (0, 0, 0)
    }
}

/// Whether a [`CountingAlloc`] is installed and has served at least one
/// allocation in this process.
#[must_use]
pub fn alloc_active() -> bool {
    #[cfg(feature = "alloc-profile")]
    {
        alloc_impl::INSTALLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "alloc-profile"))]
    false
}

/// A heap high-water-mark bracket: [`heap_mark`] resets the watermark
/// to the current live size; [`HeapMark::peak_bytes`] reads the highest
/// live size since. Independent of [`enable`] — the bench harnesses use
/// it for per-phase peak measurements without full span collection.
#[derive(Debug, Clone, Copy)]
pub struct HeapMark(());

/// Starts a heap-peak measurement region. Returns a mark whose
/// [`HeapMark::peak_bytes`] is `None` when no counting allocator is
/// installed (fall back to `/proc` then, with its process-lifetime
/// staleness caveat).
#[must_use]
pub fn heap_mark() -> HeapMark {
    #[cfg(feature = "alloc-profile")]
    if alloc_active() {
        alloc_impl::PEAK.store(alloc_impl::CUR.load(Ordering::Relaxed), Ordering::Relaxed);
    }
    HeapMark(())
}

impl HeapMark {
    /// Peak live heap bytes since this mark, or `None` when the
    /// counting allocator is not installed.
    #[must_use]
    pub fn peak_bytes(&self) -> Option<u64> {
        #[cfg(feature = "alloc-profile")]
        if alloc_active() {
            return Some(alloc_impl::PEAK.load(Ordering::Relaxed));
        }
        None
    }

    /// [`HeapMark::peak_bytes`] in KiB (rounded up).
    #[must_use]
    pub fn peak_kib(&self) -> Option<u64> {
        self.peak_bytes().map(|b| b.div_ceil(1024))
    }
}

// ---------------------------------------------------------------------------
// Profile: the drained, merged result
// ---------------------------------------------------------------------------

/// One aggregated node of the merged span tree: every instance of the
/// same name path, across every thread, folded together.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub name: &'static str,
    /// Span instances folded into this node.
    pub calls: u64,
    /// Total wall time, microseconds (sum over instances).
    pub total_us: f64,
    /// Throughput counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Bytes allocated while the span was innermost-or-ancestor
    /// (0 without the `alloc-profile` allocator).
    pub alloc_bytes: u64,
    /// Allocation count (0 without the allocator).
    pub alloc_count: u64,
    /// Highest per-instance heap watermark observed (0 without the
    /// allocator).
    pub peak_bytes: u64,
    /// Children, sorted by name (deterministic even under thread races).
    pub children: Vec<Node>,
}

/// One thread's raw span timeline, for Chrome export.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSpan {
    pub name: &'static str,
    pub start_us: f64,
    pub dur_us: f64,
    pub depth: u32,
}

/// A named per-thread track of raw spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    pub label: String,
    pub spans: Vec<TrackSpan>,
}

/// The drained result of a profiling session; see [`take`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Merged span tree roots, sorted by name.
    pub roots: Vec<Node>,
    /// Counters recorded with no span open, sorted by name.
    pub orphan_counters: Vec<(&'static str, u64)>,
    /// Raw per-thread timelines, sorted by label (`main` first).
    pub tracks: Vec<Track>,
}

/// Drains every thread buffer collected so far (finished threads plus
/// the calling thread) into a merged [`Profile`] and clears the
/// collector. Leaves the enabled flag untouched.
#[must_use]
pub fn take() -> Profile {
    let mut logs: Vec<ThreadLog> = std::mem::take(&mut *lock_collected());
    if let Some(log) = with_log(|log| {
        let taken = std::mem::take(log);
        log.stack.clear();
        taken
    }) {
        if !log.spans.is_empty() || !log.orphan_counters.is_empty() {
            let mut main = log;
            if main.label.is_none() {
                main.label = Some("main".to_string());
            }
            logs.insert(0, main);
        }
    }
    build_profile(logs)
}

/// Intermediate aggregation node keyed by name (BTreeMap ⇒ children
/// sorted by name ⇒ deterministic merged structure).
#[derive(Default)]
struct Agg {
    calls: u64,
    total_us: f64,
    counters: BTreeMap<&'static str, u64>,
    alloc_bytes: u64,
    alloc_count: u64,
    peak_bytes: u64,
    children: BTreeMap<&'static str, Agg>,
}

fn build_profile(logs: Vec<ThreadLog>) -> Profile {
    let mut root = Agg::default();
    let mut orphans: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut tracks = Vec::new();

    for (i, log) in logs.iter().enumerate() {
        for (name, v) in &log.orphan_counters {
            *orphans.entry(name).or_insert(0) += v;
        }
        // Parent indices always precede children, so one forward pass
        // can aggregate by walking each span's ancestor path.
        for (si, s) in log.spans.iter().enumerate() {
            let mut path = Vec::with_capacity(s.depth as usize + 1);
            let mut cur = Some(si);
            while let Some(c) = cur {
                path.push(log.spans[c].name);
                cur = log.spans[c].parent;
            }
            path.reverse();
            let mut node = &mut root;
            for name in path {
                node = node.children.entry(name).or_default();
            }
            node.calls += 1;
            node.total_us += s.dur_us;
            node.alloc_bytes += s.alloc_bytes;
            node.alloc_count += s.alloc_count;
            node.peak_bytes = node.peak_bytes.max(s.peak_bytes);
            for (cn, cv) in &s.counters {
                *node.counters.entry(cn).or_insert(0) += cv;
            }
        }
        let label = log.label.clone().unwrap_or_else(|| {
            if i == 0 {
                "main".into()
            } else {
                "thread".into()
            }
        });
        if !log.spans.is_empty() {
            tracks.push(Track {
                label,
                spans: log
                    .spans
                    .iter()
                    .map(|s| TrackSpan {
                        name: s.name,
                        start_us: s.start_us,
                        dur_us: s.dur_us,
                        depth: s.depth,
                    })
                    .collect(),
            });
        }
    }

    fn freeze(name: &'static str, agg: Agg) -> Node {
        Node {
            name,
            calls: agg.calls,
            total_us: agg.total_us,
            counters: agg.counters.into_iter().collect(),
            alloc_bytes: agg.alloc_bytes,
            alloc_count: agg.alloc_count,
            peak_bytes: agg.peak_bytes,
            children: agg
                .children
                .into_iter()
                .map(|(n, a)| freeze(n, a))
                .collect(),
        }
    }

    tracks.sort_by(|a, b| {
        (a.label != "main")
            .cmp(&(b.label != "main"))
            .then_with(|| a.label.cmp(&b.label))
    });
    Profile {
        roots: root
            .children
            .into_iter()
            .map(|(n, a)| freeze(n, a))
            .collect(),
        orphan_counters: orphans.into_iter().collect(),
        tracks,
    }
}

impl Profile {
    /// Finds a merged node by slash-separated path (`"sim.sharded/sim.simulate"`).
    #[must_use]
    pub fn node(&self, path: &str) -> Option<&Node> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let mut node = self.roots.iter().find(|n| n.name == first)?;
        for p in parts {
            node = node.children.iter().find(|n| n.name == p)?;
        }
        Some(node)
    }

    /// The deterministic JSON document. With `with_times` false every
    /// measured quantity (wall micros, allocation figures) is omitted,
    /// leaving only run-invariant structure — names, call counts,
    /// counters, track labels — so two runs of the same workload
    /// serialize to identical bytes.
    #[must_use]
    pub fn to_json(&self, with_times: bool) -> String {
        fn node_json(out: &mut String, n: &Node, with_times: bool) {
            out.push_str("{\"name\":");
            crate::json::push_escaped(out, n.name);
            let _ = std::fmt::Write::write_fmt(out, format_args!(",\"calls\":{}", n.calls));
            if with_times {
                out.push_str(",\"total_us\":");
                push_f64(out, round6(n.total_us));
                let _ = std::fmt::Write::write_fmt(
                    out,
                    format_args!(
                        ",\"alloc_bytes\":{},\"alloc_count\":{},\"peak_bytes\":{}",
                        n.alloc_bytes, n.alloc_count, n.peak_bytes
                    ),
                );
            }
            out.push_str(",\"counters\":{");
            for (i, (cn, cv)) in n.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::json::push_escaped(out, cn);
                let _ = std::fmt::Write::write_fmt(out, format_args!(":{cv}"));
            }
            out.push_str("},\"children\":[");
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node_json(out, c, with_times);
            }
            out.push_str("]}");
        }

        let mut out = String::from("{\n  \"schema\": \"sdpm-profile/v1\",\n  \"tracks\": [");
        for (i, t) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            crate::json::push_escaped(&mut out, &t.label);
        }
        out.push_str("],\n  \"orphan_counters\": {");
        for (i, (cn, cv)) in self.orphan_counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_escaped(&mut out, cn);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(":{cv}"));
        }
        out.push_str("},\n  \"spans\": [");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            node_json(&mut out, r, with_times);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Terminal rendering: an indented tree with wall time, calls, and
    /// per-counter throughput.
    #[must_use]
    pub fn render(&self) -> String {
        fn walk(out: &mut String, n: &Node, depth: usize) {
            let secs = n.total_us / 1e6;
            let mut line = format!(
                "{:indent$}{:<32} {:>10.3} ms  x{:<5}",
                "",
                n.name,
                n.total_us / 1e3,
                n.calls,
                indent = depth * 2
            );
            for (cn, cv) in &n.counters {
                let rate = if secs > 0.0 {
                    format!(" ({:.2e}/s)", *cv as f64 / secs)
                } else {
                    String::new()
                };
                line.push_str(&format!("  {cn}={cv}{rate}"));
            }
            if n.alloc_count > 0 {
                line.push_str(&format!(
                    "  alloc={} KiB/{} calls, peak={} KiB",
                    n.alloc_bytes / 1024,
                    n.alloc_count,
                    n.peak_bytes / 1024
                ));
            }
            line.push('\n');
            out.push_str(&line);
            for c in &n.children {
                walk(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(&mut out, r, 0);
        }
        if !self.orphan_counters.is_empty() {
            out.push_str("(no open span)\n");
            for (cn, cv) in &self.orphan_counters {
                out.push_str(&format!("  {cn}={cv}\n"));
            }
        }
        out
    }
}

/// Rounds to microsecond precision ×1e-6 so JSON output does not carry
/// 17-digit float noise.
fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    // Prof state is process-global; tests in this module serialize on a
    // lock and fully drain between runs.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn exercise() -> Profile {
        enable();
        {
            let _a = span("outer");
            add("events", 10);
            {
                let _b = span("inner");
                add("events", 5);
                add("bytes", 100);
            }
            {
                let _b = span("inner");
                add("events", 7);
            }
        }
        let t = std::thread::Builder::new()
            .spawn(|| {
                set_thread_label("worker-0");
                let _w = span("worker");
                add("disks", 2);
            })
            .expect("spawn");
        t.join().expect("join");
        disable();
        take()
    }

    #[test]
    fn merges_nested_spans_and_counters() {
        let _g = locked();
        let _ = take();
        let p = exercise();
        let outer = p.node("outer").expect("outer span");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.counters, vec![("events", 10)]);
        let inner = p.node("outer/inner").expect("inner span");
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.counters, vec![("bytes", 100), ("events", 12)]);
        let worker = p.node("worker").expect("worker-thread span merged");
        assert_eq!(worker.counters, vec![("disks", 2)]);
        assert_eq!(p.tracks.len(), 2);
        assert_eq!(p.tracks[0].label, "main");
        assert_eq!(p.tracks[1].label, "worker-0");
    }

    #[test]
    fn structure_is_deterministic_across_runs() {
        let _g = locked();
        let _ = take();
        let a = exercise().to_json(false);
        let b = exercise().to_json(false);
        assert_eq!(a, b, "redacted profile JSON must be byte-identical");
        assert!(a.contains("\"schema\": \"sdpm-profile/v1\""));
        assert!(!a.contains("total_us"), "redacted form must omit times");
    }

    #[test]
    fn disabled_recording_is_empty_and_guard_is_inert() {
        let _g = locked();
        let _ = take();
        disable();
        {
            let _s = span("ignored");
            add("events", 1);
        }
        let p = take();
        assert!(p.roots.is_empty());
        assert!(p.tracks.is_empty());
    }

    #[test]
    fn out_of_order_drop_closes_descendants() {
        let _g = locked();
        let _ = take();
        enable();
        let a = span("a");
        let b = span("b");
        drop(a); // closes b too
        drop(b); // inert: already closed
        disable();
        let p = take();
        let a = p.node("a").expect("a recorded");
        assert_eq!(a.calls, 1);
        assert_eq!(p.node("a/b").expect("b nested under a").calls, 1);
    }

    #[test]
    fn heap_mark_reports_only_with_allocator() {
        let m = heap_mark();
        let _v: Vec<u8> = Vec::with_capacity(1 << 16);
        if alloc_active() {
            assert!(m.peak_bytes().expect("active") > 0);
        } else {
            assert!(m.peak_bytes().is_none());
        }
    }
}
