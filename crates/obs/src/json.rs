//! Minimal JSON support: a value parser for `probe`-style consumers and
//! the loadability tests, plus the emission helpers the recorders share.
//!
//! The workspace is fully offline (no `serde_json`), and the recorders
//! only need flat objects and number/string/bool scalars, so this stays
//! deliberately small: no streaming, no borrowed parsing, objects as
//! ordered key/value vectors.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object as an ordered key/value list (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as u64 (must be a non-negative integer).
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogate pairs are not needed by any recorder
                            // output; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", *c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {s:?} at offset {start}"))
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite f64 as a JSON number (shortest round-trip form).
///
/// # Panics
/// If `v` is not finite — recorders never emit NaN/inf, and emitting one
/// would silently corrupt the output file.
pub fn push_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "non-finite number in JSON output: {v}");
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Value::parse(r#"{"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_str(), Some("x\n"));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse(r#"{"a": "#).is_err());
        assert!(Value::parse(r#"["a" "b"]"#).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        let mut out = String::new();
        push_f64(&mut out, 0.1);
        assert_eq!(out, "0.1");
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.as_f64(), Some(0.1));
    }

    #[test]
    fn u64_accessor_requires_integer() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
