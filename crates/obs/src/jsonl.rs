//! Event streaming as JSON Lines.
//!
//! One event per line, `{"ev": "<kind>", ...}`. All values come from the
//! deterministic simulation clock, and numbers are printed in Rust's
//! shortest round-trip form, so two runs with the same seed and policy
//! produce **byte-identical** streams — the property the determinism
//! test pins down.

use crate::json::{push_escaped, push_f64};
use crate::{Event, Recorder};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;

/// Streams every event to `w` as one JSON line.
pub struct JsonlRecorder<W: Write> {
    w: RefCell<W>,
}

impl<W: Write> JsonlRecorder<W> {
    #[must_use]
    pub fn new(w: W) -> Self {
        JsonlRecorder { w: RefCell::new(w) }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    /// If the final flush fails.
    pub fn into_inner(self) -> W {
        let mut w = self.w.into_inner();
        w.flush().expect("jsonl flush");
        w
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&self, ev: &Event) {
        let mut line = event_to_json(ev);
        line.push('\n');
        self.w
            .borrow_mut()
            .write_all(line.as_bytes())
            .expect("jsonl write");
    }
}

/// Renders one event as its JSONL object (no trailing newline).
#[must_use]
pub fn event_to_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"ev\":");
    push_escaped(&mut s, ev.kind());
    if let Some(t) = ev.time() {
        s.push_str(",\"t\":");
        push_f64(&mut s, t);
    }
    if let Some(d) = ev.disk() {
        let _ = write!(s, ",\"disk\":{}", d.0);
    }
    match ev {
        Event::RequestArrived { bytes, write, .. } => {
            let _ = write!(s, ",\"bytes\":{bytes},\"write\":{write}");
        }
        Event::ServiceStart { level, .. } => {
            let _ = write!(s, ",\"level\":{}", level.0);
        }
        Event::GapClose {
            opened,
            level,
            standby,
            ..
        } => {
            s.push_str(",\"opened\":");
            push_f64(&mut s, *opened);
            let _ = write!(s, ",\"level\":{},\"standby\":{standby}", level.0);
        }
        Event::SpinDownComplete { started, .. } | Event::SpinUpComplete { started, .. } => {
            s.push_str(",\"started\":");
            push_f64(&mut s, *started);
        }
        Event::RpmShiftStart { from, to, .. } => {
            let _ = write!(s, ",\"from\":{},\"to\":{}", from.0, to.0);
        }
        Event::RpmShiftComplete { started, level, .. } => {
            s.push_str(",\"started\":");
            push_f64(&mut s, *started);
            let _ = write!(s, ",\"level\":{}", level.0);
        }
        Event::DirectiveIssued { action, level, .. } => {
            s.push_str(",\"action\":");
            push_escaped(&mut s, action);
            if let Some(l) = level {
                let _ = write!(s, ",\"level\":{}", l.0);
            }
        }
        Event::DirectiveMisfire { cause, .. } => {
            s.push_str(",\"cause\":");
            push_escaped(&mut s, cause);
        }
        Event::FaultInjected { kind, .. } => {
            s.push_str(",\"kind\":");
            push_escaped(&mut s, kind);
        }
        Event::StallAccrued { secs, slowdown, .. } => {
            s.push_str(",\"secs\":");
            push_f64(&mut s, *secs);
            s.push_str(",\"slowdown\":");
            push_f64(&mut s, *slowdown);
        }
        Event::DiskEnergy { joules, .. } => {
            s.push_str(",\"joules\":");
            push_f64(&mut s, *joules);
        }
        Event::PhaseStart { phase } | Event::PhaseEnd { phase } => {
            s.push_str(",\"phase\":");
            push_escaped(&mut s, phase);
        }
        Event::ServiceEnd { .. }
        | Event::GapOpen { .. }
        | Event::SpinDownStart { .. }
        | Event::SpinUpStart { .. }
        | Event::RunEnd { .. } => {}
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use sdpm_disk::RpmLevel;
    use sdpm_layout::DiskId;

    #[test]
    fn every_variant_renders_parseable_json() {
        let d = DiskId(1);
        let evs = [
            Event::RequestArrived {
                t: 0.5,
                disk: d,
                bytes: 4096,
                write: true,
            },
            Event::ServiceStart {
                t: 0.5,
                disk: d,
                level: RpmLevel(11),
            },
            Event::ServiceEnd { t: 0.6, disk: d },
            Event::GapOpen { t: 0.6, disk: d },
            Event::GapClose {
                t: 9.0,
                disk: d,
                opened: 0.6,
                level: RpmLevel(0),
                standby: false,
            },
            Event::SpinDownStart { t: 1.0, disk: d },
            Event::SpinDownComplete {
                t: 2.5,
                disk: d,
                started: 1.0,
            },
            Event::SpinUpStart { t: 3.0, disk: d },
            Event::SpinUpComplete {
                t: 13.9,
                disk: d,
                started: 3.0,
            },
            Event::RpmShiftStart {
                t: 1.0,
                disk: d,
                from: RpmLevel(11),
                to: RpmLevel(3),
            },
            Event::RpmShiftComplete {
                t: 2.0,
                disk: d,
                started: 1.0,
                level: RpmLevel(3),
            },
            Event::DirectiveIssued {
                t: 1.0,
                disk: d,
                action: "set_rpm",
                level: Some(RpmLevel(3)),
            },
            Event::DirectiveMisfire {
                t: 1.0,
                disk: d,
                cause: "spin_up_rejected",
            },
            Event::StallAccrued {
                t: 0.6,
                disk: d,
                secs: 0.01,
                slowdown: 1.5,
            },
            Event::DiskEnergy {
                t: 9.0,
                disk: d,
                joules: 42.0,
            },
            Event::RunEnd { t: 9.0 },
            Event::PhaseStart {
                phase: "dap-construction",
            },
            Event::PhaseEnd {
                phase: "dap-construction",
            },
        ];
        for ev in &evs {
            let line = event_to_json(ev);
            let v = Value::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("ev").unwrap().as_str(), Some(ev.kind()));
            if let Some(t) = ev.time() {
                assert_eq!(v.get("t").unwrap().as_f64(), Some(t));
            }
            if let Some(d) = ev.disk() {
                assert_eq!(v.get("disk").unwrap().as_u64(), Some(u64::from(d.0)));
            }
        }
    }

    #[test]
    fn recorder_writes_one_line_per_event() {
        let rec = JsonlRecorder::new(Vec::new());
        rec.record(&Event::RunEnd { t: 1.0 });
        rec.record(&Event::GapOpen {
            t: 0.0,
            disk: DiskId(0),
        });
        let out = String::from_utf8(rec.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| Value::parse(l).is_ok()));
    }
}
