//! End-to-end recorder tests against the real simulator and pipeline:
//! byte-deterministic JSONL streams, exact metrics/report reconciliation,
//! loadable Chrome traces, misfire classification, and phase spans.

use sdpm_core::{run_scheme_with_recorder, PipelineConfig, Scheme};
use sdpm_disk::{ultrastar36z15, RpmLevel};
use sdpm_ir::{AffineExpr, ArrayRef, LoopDim, LoopNest, Program, Statement};
use sdpm_layout::{ArrayFile, DiskId, DiskPool, StorageOrder, Striping};
use sdpm_obs::json::Value;
use sdpm_obs::{ChromeTraceRecorder, Event, JsonlRecorder, Metrics, MetricsRecorder, Recorder};
use sdpm_sim::{simulate_with_recorder, DirectiveConfig, Policy, SimReport};
use sdpm_trace::{AppEvent, IoRequest, PowerAction, ReqKind, Trace};
use std::cell::RefCell;

/// An I/O + compute + I/O phased program over 4 disks. `compute_secs`
/// sizes the mid gap; 60 s clears the TPM break-even (~15.2 s).
fn phased(compute_secs: f64) -> Program {
    let a = ArrayFile {
        name: "A".into(),
        dims: vec![64 * 1024],
        element_bytes: 8,
        order: StorageOrder::RowMajor,
        striping: Striping {
            start_disk: DiskId(0),
            stripe_factor: 4,
            stripe_bytes: 64 * 1024,
        },
        base_block: 0,
    };
    let scan = |label: &str| LoopNest {
        label: label.into(),
        loops: vec![LoopDim::simple(64 * 1024)],
        stmts: vec![Statement {
            label: "S".into(),
            refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
        }],
        cycles_per_iter: 75.0,
    };
    let compute_iters = 100_000u64;
    let compute = LoopNest {
        label: "fft".into(),
        loops: vec![LoopDim::simple(compute_iters)],
        stmts: vec![],
        cycles_per_iter: compute_secs / compute_iters as f64 * 750.0e6,
    };
    Program {
        name: "phased".into(),
        arrays: vec![a],
        nests: vec![scan("read"), compute, scan("reread")],
        clock_hz: Program::PAPER_CLOCK_HZ,
    }
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        disks: 4,
        ..Default::default()
    }
}

#[test]
fn jsonl_stream_is_byte_deterministic() {
    let p = phased(60.0);
    let run = |scheme| {
        let rec = JsonlRecorder::new(Vec::new());
        let _ = run_scheme_with_recorder(&p, scheme, &cfg(), &rec);
        rec.into_inner()
    };
    for scheme in [Scheme::CmDrpm, Scheme::Tpm, Scheme::IDrpm] {
        let a = run(scheme);
        let b = run(scheme);
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "{scheme:?}: same program + config must give identical bytes"
        );
    }
}

/// Sums exactly the way `MetricsRecorder` does, so bitwise comparison is
/// legitimate: per-disk gap seconds in gap order, stalls in event order
/// (the report accumulates them the same way), energy in disk order.
fn assert_reconciles(m: &Metrics, r: &SimReport) {
    assert_eq!(m.requests, r.requests);
    assert_eq!(m.exec_secs.to_bits(), r.exec_secs.to_bits());
    assert_eq!(m.stall_secs.to_bits(), r.stall_secs.to_bits());
    assert_eq!(m.misfires_total(), r.misfire_causes.total());
    for (cause, n) in r.misfire_causes.breakdown() {
        assert_eq!(m.misfires.get(cause).copied().unwrap_or(0), n, "{cause}");
    }
    let gap_count: usize = r.per_disk.iter().map(|d| d.gaps.len()).sum();
    assert_eq!(m.gap_count, gap_count as u64);
    let standby: usize = r
        .per_disk
        .iter()
        .flat_map(|d| &d.gaps)
        .filter(|g| g.standby)
        .count();
    assert_eq!(m.standby_gaps, standby as u64);
    let mut energy = 0.0f64;
    for (i, d) in r.per_disk.iter().enumerate() {
        let md = &m.per_disk[i];
        assert_eq!(md.requests, d.requests, "disk {i} requests");
        assert_eq!(md.spin_downs, d.spin_downs, "disk {i} spin_downs");
        assert_eq!(md.spin_ups, d.spin_ups, "disk {i} spin_ups");
        assert_eq!(md.rpm_shifts, d.rpm_shifts, "disk {i} rpm_shifts");
        let gap_secs: f64 = d.gaps.iter().map(|g| g.end - g.start).sum();
        assert_eq!(
            md.gap_secs.to_bits(),
            gap_secs.to_bits(),
            "disk {i} gap seconds"
        );
        assert_eq!(
            md.energy_j.to_bits(),
            d.energy.total_j().to_bits(),
            "disk {i} energy"
        );
        energy += d.energy.total_j();
    }
    assert_eq!(m.energy_j.to_bits(), energy.to_bits());
    assert!(
        (m.energy_j - r.total_energy_j()).abs() <= 1e-9 * m.energy_j.abs().max(1.0),
        "merged-breakdown total drifted: {} vs {}",
        m.energy_j,
        r.total_energy_j()
    );
}

#[test]
fn metrics_reconcile_exactly_with_sim_report_across_schemes() {
    let p = phased(60.0);
    for scheme in Scheme::all() {
        let rec = MetricsRecorder::new();
        let r = run_scheme_with_recorder(&p, scheme, &cfg(), &rec);
        let m = rec.snapshot();
        assert_reconciles(&m, &r);
        // The interesting schemes must actually exercise the counters.
        match scheme {
            Scheme::CmTpm | Scheme::ITpm => assert!(m.spin_downs > 0, "{scheme:?}"),
            Scheme::CmDrpm | Scheme::IDrpm | Scheme::Drpm => {
                assert!(m.rpm_shifts > 0, "{scheme:?}");
            }
            _ => {}
        }
    }
}

#[test]
fn chrome_trace_loads_and_covers_every_disk() {
    let p = phased(60.0);
    let rec = ChromeTraceRecorder::new();
    let _ = run_scheme_with_recorder(&p, Scheme::CmDrpm, &cfg(), &rec);
    let mut buf = Vec::new();
    rec.write_to(&mut buf).unwrap();
    let v = Value::parse(std::str::from_utf8(&buf).unwrap()).expect("valid JSON");
    let evs = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("array");
    assert!(evs.len() > 100);
    for e in evs {
        assert!(e.get("ph").and_then(Value::as_str).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("name").and_then(Value::as_str).is_some());
    }
    // One named thread track per simulated disk, plus the pipeline pid.
    let thread_names: Vec<&str> = evs
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
        })
        .collect();
    for d in 0..4 {
        assert!(
            thread_names
                .iter()
                .any(|n| n.contains(&format!("disk {d}"))),
            "missing track for disk {d} in {thread_names:?}"
        );
    }
    assert!(evs
        .iter()
        .any(|e| e.get("pid").and_then(Value::as_u64) == Some(2)));
}

#[test]
fn misfire_events_classify_hostile_directives() {
    let t = Trace {
        name: "hostile".into(),
        pool_size: 2,
        events: vec![
            AppEvent::Power {
                disk: DiskId(0),
                action: PowerAction::SpinUp,
            },
            AppEvent::Power {
                disk: DiskId(0),
                action: PowerAction::SetRpm(RpmLevel(200)),
            },
            AppEvent::Power {
                disk: DiskId(1),
                action: PowerAction::SpinDown,
            },
            AppEvent::Power {
                disk: DiskId(1),
                action: PowerAction::SpinDown,
            },
            AppEvent::Compute {
                nest: 0,
                first_iter: 0,
                iters: 1,
                secs: 5.0,
            },
            AppEvent::Io(IoRequest {
                disk: DiskId(1),
                start_block: 0,
                size_bytes: 4096,
                kind: ReqKind::Read,
                sequential: false,
                nest: 0,
                iter: 0,
            }),
        ],
    };
    let rec = MetricsRecorder::new();
    let r = simulate_with_recorder(
        &t,
        &ultrastar36z15(),
        DiskPool::new(2),
        &Policy::Directive(DirectiveConfig::default()),
        &rec,
    );
    let m = rec.snapshot();
    assert_eq!(m.misfires.get("spin_up_rejected"), Some(&1));
    assert_eq!(m.misfires.get("off_ladder_level"), Some(&1));
    assert_eq!(m.misfires.get("spin_down_rejected"), Some(&1));
    assert_eq!(m.directives_issued, 4);
    assert_reconciles(&m, &r);
}

struct PhaseLog(RefCell<Vec<String>>);

impl Recorder for PhaseLog {
    fn record(&self, ev: &Event) {
        match ev {
            Event::PhaseStart { phase } => self.0.borrow_mut().push(format!("+{phase}")),
            Event::PhaseEnd { phase } => self.0.borrow_mut().push(format!("-{phase}")),
            _ => {}
        }
    }
}

#[test]
fn pipeline_emits_ordered_phase_spans() {
    let p = phased(10.0);
    let log = PhaseLog(RefCell::new(Vec::new()));
    let _ = run_scheme_with_recorder(&p, Scheme::CmDrpm, &cfg(), &log);
    assert_eq!(
        log.0.into_inner(),
        [
            "+dap-construction",
            "-dap-construction",
            "+break-even-thresholding",
            "-break-even-thresholding",
            "+directive-insertion",
            "-directive-insertion",
            "+simulation",
            "-simulation",
        ]
    );

    let log = PhaseLog(RefCell::new(Vec::new()));
    let _ = run_scheme_with_recorder(&p, Scheme::Base, &cfg(), &log);
    assert_eq!(
        log.0.into_inner(),
        [
            "+dap-construction",
            "-dap-construction",
            "+simulation",
            "-simulation"
        ]
    );
}

/// Three independent misfire counters — the simulator's report, the
/// dynamic `MetricsRecorder` stream, and `sdpm-verify`'s static replay —
/// must agree cause-by-cause, on a hostile stream and on a clean
/// pipeline run alike.
#[test]
fn static_replay_agrees_with_dynamic_misfire_metrics() {
    let hostile = Trace {
        name: "hostile".into(),
        pool_size: 2,
        events: vec![
            AppEvent::Power {
                disk: DiskId(0),
                action: PowerAction::SpinUp,
            },
            AppEvent::Power {
                disk: DiskId(0),
                action: PowerAction::SetRpm(RpmLevel(200)),
            },
            AppEvent::Power {
                disk: DiskId(1),
                action: PowerAction::SpinDown,
            },
            AppEvent::Power {
                disk: DiskId(1),
                action: PowerAction::SpinDown,
            },
            AppEvent::Io(IoRequest {
                disk: DiskId(1),
                start_block: 0,
                size_bytes: 4096,
                kind: ReqKind::Read,
                sequential: false,
                nest: 0,
                iter: 0,
            }),
        ],
    };
    let params = ultrastar36z15();
    let dcfg = DirectiveConfig::default();
    let rec = MetricsRecorder::new();
    let report = simulate_with_recorder(
        &hostile,
        &params,
        DiskPool::new(2),
        &Policy::Directive(dcfg),
        &rec,
    );
    let m = rec.snapshot();
    let replay = sdpm_verify::replay_directives(&hostile, &params, dcfg.overhead_secs);

    assert_eq!(replay.misfires, report.misfire_causes);
    assert!(replay.misfires.total() > 0);
    for (label, n) in replay.misfires.breakdown() {
        assert_eq!(
            m.misfires.get(label).copied().unwrap_or(0),
            n,
            "dynamic metric for {label} disagrees with static replay"
        );
    }
    assert_eq!(m.misfires_total(), replay.misfires.total());

    // The replay cross-check flags the misfires as a warning, never as a
    // report divergence: all three counters share one truth.
    let diags = sdpm_verify::crosscheck_report(&hostile, &params, dcfg.overhead_secs, &report);
    assert!(!sdpm_verify::has_errors(&diags));
    assert!(diags
        .iter()
        .any(|d| d.code == sdpm_verify::Code::ReplayMisfires));

    // Clean pipeline run: the same three-way agreement at zero.
    let p = phased(60.0);
    let rec = MetricsRecorder::new();
    let report = run_scheme_with_recorder(&p, Scheme::CmTpm, &cfg(), &rec);
    let m = rec.snapshot();
    assert_eq!(m.misfires_total(), report.misfire_causes.total());
}
