//! In-tree stand-in for the `criterion` API subset this workspace uses.
//!
//! The build container is fully offline, so the real `criterion` cannot
//! be fetched. This harness keeps the `benches/` sources compiling and
//! producing useful wall-clock numbers: each benchmark is warmed up, then
//! timed over `sample_size` samples, and the per-iteration median is
//! printed together with derived throughput when one was declared.
//!
//! It intentionally skips criterion's statistics, plotting, and baseline
//! comparison; the printed median is what the repo's performance notes
//! reference.
//!
//! Setting `SDPM_BENCH_SAMPLES=<n>` caps every benchmark at `n` samples
//! of a single iteration each, overriding declared sample sizes and the
//! per-sample calibration. CI's smoke job uses this to exercise every
//! bench body end to end in seconds; the numbers it prints are not
//! meaningful measurements.

#![forbid(unsafe_code)]
use std::time::Instant;

/// The `SDPM_BENCH_SAMPLES` override, parsed once per call site.
fn smoke_samples() -> Option<usize> {
    std::env::var("SDPM_BENCH_SAMPLES").ok()?.parse().ok()
}

/// Declared throughput of one benchmark, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing callback target. Mirrors `criterion::Bencher`.
pub struct Bencher {
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    median_secs: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration time across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: target ~40 ms per
        // sample, at least one iteration. Smoke mode skips calibration
        // and runs each sample once.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let one = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = if smoke_samples().is_some() {
            1
        } else {
            ((0.04 / one) as u64).clamp(1, 1_000_000)
        };
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_secs = samples[samples.len() / 2];
    }
}

fn human_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(name: &str, median_secs: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / median_secs / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / median_secs / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "bench: {name:<44} {:>12}/iter{rate}",
        human_secs(median_secs)
    );
}

/// Top-level harness handle. Mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark. The
    /// `SDPM_BENCH_SAMPLES` smoke override wins when set.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            median_secs: 0.0,
            sample_size: smoke_samples().unwrap_or(self.sample_size),
        };
        f(&mut b);
        report(name, b.median_secs, None);
        self
    }
}

/// A group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            median_secs: 0.0,
            sample_size: smoke_samples().unwrap_or(self.sample_size),
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.median_secs,
            self.throughput,
        );
        self
    }

    /// Ends the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Mirrors `criterion_group!` (the `name/config/targets` form and the
/// positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
