//! Shared-pool multi-program scenarios: tenants, arrival processes, and
//! the [`MixSession`] that drives them.
//!
//! The rest of the pipeline assumes exactly one program owns the pool —
//! [`Session`] caches one trace, the engine replays one blocking
//! application, `verify` proves one program's directives safe. A
//! *scenario* lifts that assumption: K [`Tenant`]s (each a program +
//! scheme pair) share one disk pool, their request streams shifted by an
//! [`ArrivalProcess`] and compressed by a load factor, merged on one
//! wall clock ([`sdpm_trace::merge_tenants`]) and played open-loop
//! through the shared-pool engine ([`sdpm_sim::simulate_mix`]).
//!
//! Two disciplines, one cache:
//!
//! * **Solo** ([`MixSession::run_tenant`]) — each tenant's closed-loop
//!   run, delegated verbatim to a per-`(program, cfg)` [`Session`]. A
//!   degenerate mix (one tenant, zero offset, load factor 1) therefore
//!   runs the *identical* code path as [`Session::run`]: bit-exactness
//!   with the single-program pipeline is structural, not numerical.
//! * **Contended** ([`MixSession::contended`]) — the merged open-loop
//!   replay against the shared pool, where policies and tenants
//!   interact (queueing, stolen idle gaps, cross-tenant directive
//!   vetoes).
//!
//! All randomness (Poisson, bursty, long-tailed arrivals) flows from one
//! `u64` seed through a splitmix64 stream — identical seeds give
//! bit-identical scenarios on every platform.

use crate::insert::CmMode;
use crate::pipeline::{PipelineConfig, Scheme};
use crate::session::Session;
use sdpm_ir::Program;
use sdpm_layout::DiskPool;
use sdpm_sim::{simulate_mix, MixPolicy, MixReport, SimError, SimReport};
use sdpm_trace::mix::{merge_tenants, tenant_timeline, TenantEvent, TenantStream};

/// One program in a shared-pool scenario.
#[derive(Debug, Clone)]
pub struct Tenant<'a> {
    /// Display name (mix-report rows).
    pub name: String,
    /// The tenant's program.
    pub program: &'a Program,
    /// Pipeline configuration. All tenants of one mix must agree on the
    /// disk model and pool size ([`MixSession::contended`] checks).
    pub cfg: &'a PipelineConfig,
    /// Which scheme's trace the tenant contributes: CM schemes
    /// contribute their instrumented (directive-carrying) trace, all
    /// others the base trace.
    pub scheme: Scheme,
}

/// When each tenant's stream starts, relative to the scenario origin.
///
/// Stochastic variants draw from a seeded splitmix64 stream — the same
/// `(process, seed, tenant count)` triple always produces the same
/// offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Tenant `k` starts at `k × stagger_secs`. `stagger_secs = 0` is
    /// the degenerate all-at-once scenario (and, with one tenant, the
    /// bit-exact single-program case).
    Fixed {
        /// Per-tenant start spacing, seconds.
        stagger_secs: f64,
    },
    /// Open-loop Poisson arrivals: i.i.d. exponential gaps between
    /// consecutive tenant starts.
    Poisson {
        /// Mean gap between tenant starts, seconds.
        mean_gap_secs: f64,
    },
    /// Bursts of `burst` tenants start (nearly) together, bursts spaced
    /// `gap_secs` apart, with uniform jitter in `[0, spread_secs)`
    /// inside each burst.
    Bursty {
        /// Tenants per burst.
        burst: u32,
        /// Gap between bursts, seconds.
        gap_secs: f64,
        /// Within-burst uniform jitter bound, seconds.
        spread_secs: f64,
    },
    /// Long-tailed (Pareto) gaps between consecutive tenant starts:
    /// most tenants arrive close together, a few arrive much later.
    LongTail {
        /// Pareto scale, seconds (the typical gap).
        scale_secs: f64,
        /// Pareto tail index; smaller is heavier (must be > 0).
        shape: f64,
    },
}

impl ArrivalProcess {
    /// Whether the process draws randomness (anything but `Fixed`).
    /// Stochastic mixes cannot be covered by the static directive
    /// safety argument — verification degrades to a warning
    /// (`SDPM-W003`) instead of a proof.
    #[must_use]
    pub fn is_stochastic(&self) -> bool {
        !matches!(self, ArrivalProcess::Fixed { .. })
    }

    /// The start offset of each of `k` tenants, in tenant order.
    /// Deterministic in `(self, seed, k)`.
    #[must_use]
    pub fn offsets(&self, seed: u64, k: usize) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        match *self {
            ArrivalProcess::Fixed { stagger_secs } => {
                (0..k).map(|i| i as f64 * stagger_secs).collect()
            }
            ArrivalProcess::Poisson { mean_gap_secs } => {
                let mut t = 0.0;
                (0..k)
                    .map(|i| {
                        if i > 0 {
                            t += -mean_gap_secs * (1.0 - rng.unit_f64()).ln();
                        }
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                burst,
                gap_secs,
                spread_secs,
            } => {
                let per = burst.max(1) as usize;
                (0..k)
                    .map(|i| (i / per) as f64 * gap_secs + rng.unit_f64() * spread_secs)
                    .collect()
            }
            ArrivalProcess::LongTail { scale_secs, shape } => {
                let mut t = 0.0;
                (0..k)
                    .map(|i| {
                        if i > 0 {
                            // Pareto(Lomax) gap: scale * ((1-u)^(-1/shape) - 1).
                            let u = rng.unit_f64();
                            t += scale_secs * ((1.0 - u).powf(-1.0 / shape) - 1.0);
                        }
                        t
                    })
                    .collect()
            }
        }
    }
}

/// A K-tenant shared-pool scenario.
#[derive(Debug, Clone)]
pub struct Mix<'a> {
    /// The tenants, in tenant-id order.
    pub tenants: Vec<Tenant<'a>>,
    /// How tenant starts are spread over time.
    pub arrivals: ArrivalProcess,
    /// Seed for the arrival process (unused by `Fixed`).
    pub seed: u64,
    /// Time-compression factor applied to every tenant's nominal
    /// timeline: factor `f` squeezes inter-request gaps by `1/f`, so
    /// `f > 1` raises offered load. Factor 1 is the nominal timeline
    /// (bitwise, for the degenerate bit-exactness guarantee).
    pub load_factor: f64,
}

/// Session-per-tenant driver for a [`Mix`], with trace generation cached
/// per distinct `(program, cfg)` pair — two tenants running the same
/// kernel under the same configuration share one generation, mirroring
/// what [`Session`] does for schemes.
#[derive(Debug)]
pub struct MixSession<'a> {
    mix: Mix<'a>,
    sessions: Vec<Session<'a>>,
    /// `session_of[t]` indexes `sessions` for tenant `t`.
    session_of: Vec<usize>,
}

impl<'a> MixSession<'a> {
    /// Builds the session table for `mix`.
    ///
    /// # Panics
    /// If the mix has no tenants or a non-finite/non-positive load
    /// factor.
    #[must_use]
    pub fn new(mix: Mix<'a>) -> Self {
        assert!(!mix.tenants.is_empty(), "a mix needs at least one tenant");
        assert!(
            mix.load_factor.is_finite() && mix.load_factor > 0.0,
            "load factor must be finite and positive, got {}",
            mix.load_factor
        );
        let mut sessions: Vec<Session<'a>> = Vec::new();
        let mut keys: Vec<(*const Program, *const PipelineConfig)> = Vec::new();
        let session_of = mix
            .tenants
            .iter()
            .map(|t| {
                let key = (std::ptr::from_ref(t.program), std::ptr::from_ref(t.cfg));
                keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                    keys.push(key);
                    sessions.push(Session::new(t.program, t.cfg));
                    sessions.len() - 1
                })
            })
            .collect();
        MixSession {
            mix,
            sessions,
            session_of,
        }
    }

    /// The scenario description.
    #[must_use]
    pub fn mix(&self) -> &Mix<'a> {
        &self.mix
    }

    /// How many distinct `(program, cfg)` sessions back the tenants —
    /// the cache-sharing probe (`<= tenants`).
    #[must_use]
    pub fn distinct_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Each tenant's start offset under the mix's arrival process.
    #[must_use]
    pub fn offsets(&self) -> Vec<f64> {
        self.mix
            .arrivals
            .offsets(self.mix.seed, self.mix.tenants.len())
    }

    /// Tenant `t`'s *solo* closed-loop run — delegated verbatim to the
    /// underlying [`Session::run`], so it is bit-identical to the
    /// single-program pipeline by construction.
    ///
    /// # Panics
    /// If `t` is out of range.
    #[must_use]
    pub fn run_tenant(&mut self, t: usize) -> SimReport {
        let scheme = self.mix.tenants[t].scheme;
        self.sessions[self.session_of[t]].run(scheme)
    }

    /// Each tenant's open-loop stream: the scheme-appropriate cached
    /// trace (instrumented for CM schemes, base otherwise) projected
    /// onto the shared wall clock with the tenant's arrival offset and
    /// the mix's load factor.
    ///
    /// # Panics
    /// If a tenant's trace fails generation-time validation.
    #[must_use]
    pub fn tenant_streams(&mut self) -> Vec<TenantStream> {
        let offsets = self.offsets();
        let mut out = Vec::with_capacity(self.mix.tenants.len());
        for (t, offset) in offsets.iter().enumerate() {
            let scheme = self.mix.tenants[t].scheme;
            let session = &mut self.sessions[self.session_of[t]];
            let trace = match scheme {
                Scheme::CmTpm => &session.instrumented(CmMode::Tpm).trace,
                Scheme::CmDrpm => &session.instrumented(CmMode::Drpm).trace,
                _ => session.base_trace(),
            };
            out.push(tenant_timeline(
                trace,
                t as u32,
                *offset,
                self.mix.load_factor,
            ));
        }
        out
    }

    /// The merged multi-tenant event stream, in `(time, tenant, seq)`
    /// order — the shared-pool engine's input.
    ///
    /// # Panics
    /// Same conditions as [`MixSession::tenant_streams`].
    #[must_use]
    pub fn merged(&mut self) -> Vec<TenantEvent> {
        merge_tenants(&self.tenant_streams())
    }

    /// Runs the contended scenario: all tenants' streams merged against
    /// the shared pool under `policy`.
    ///
    /// # Errors
    /// [`SimError::InvalidParams`] when the tenants disagree on the disk
    /// model or pool size (a mix shares physical disks; there is no
    /// per-tenant hardware), plus anything [`simulate_mix`] reports.
    pub fn contended(&mut self, policy: &MixPolicy) -> Result<MixReport, SimError> {
        let first = self.mix.tenants[0].cfg;
        for t in &self.mix.tenants[1..] {
            if t.cfg.disks != first.disks {
                return Err(SimError::InvalidParams(format!(
                    "tenants disagree on pool size: {} vs {}",
                    t.cfg.disks, first.disks
                )));
            }
            if t.cfg.params != first.params {
                return Err(SimError::InvalidParams(format!(
                    "tenants disagree on the disk model: {} vs {}",
                    t.cfg.params.model, first.params.model
                )));
            }
        }
        let pool = DiskPool::new(first.disks);
        let params = first.params.clone();
        let names: Vec<String> = self.mix.tenants.iter().map(|t| t.name.clone()).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let events = self.merged();
        simulate_mix(&events, &name_refs, &params, pool, policy)
    }
}

/// splitmix64 (Steele et al.): tiny, seedable, platform-independent.
/// Kept local so scenarios need no RNG dependency and stay reproducible
/// byte-for-byte from the seed alone.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_sim::{AdaptiveConfig, TpmConfig};
    use sdpm_workloads::synth::checkpoint_loop;

    fn degenerate_mix<'a>(p: &'a Program, cfg: &'a PipelineConfig, scheme: Scheme) -> Mix<'a> {
        Mix {
            tenants: vec![Tenant {
                name: "solo".into(),
                program: p,
                cfg,
                scheme,
            }],
            arrivals: ArrivalProcess::Fixed { stagger_secs: 0.0 },
            seed: 0,
            load_factor: 1.0,
        }
    }

    #[test]
    fn degenerate_mix_is_bit_exact_with_session_for_all_schemes() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        for scheme in Scheme::all() {
            let mut solo = Session::new(&p, &cfg);
            let want = solo.run(scheme);
            let mut mix = MixSession::new(degenerate_mix(&p, &cfg, scheme));
            let got = mix.run_tenant(0);
            assert_eq!(want, got, "{}: degenerate mix drifted", scheme.label());
            assert_eq!(
                want.total_energy_j().to_bits(),
                got.total_energy_j().to_bits(),
                "{}: energy bits drifted",
                scheme.label()
            );
            assert_eq!(
                want.exec_secs.to_bits(),
                got.exec_secs.to_bits(),
                "{}: exec bits drifted",
                scheme.label()
            );
        }
    }

    #[test]
    fn degenerate_stream_matches_nominal_timeline_bitwise() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut mix = MixSession::new(degenerate_mix(&p, &cfg, Scheme::Base));
        let streams = mix.tenant_streams();
        // Reference: hand-walked nominal timeline of the base trace.
        let mut t = 0.0f64;
        let mut want = Vec::new();
        for e in &mix.sessions[0].base_trace().events {
            match e {
                sdpm_trace::AppEvent::Compute { secs, .. } => t += secs,
                _ => want.push(t),
            }
        }
        assert!(!want.is_empty());
        assert_eq!(streams[0].events.len(), want.len());
        for (got, w) in streams[0].events.iter().zip(&want) {
            assert_eq!(got.at_secs.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn same_program_tenants_share_one_session_and_one_generation() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let tenant = |name: &str| Tenant {
            name: name.into(),
            program: &p,
            cfg: &cfg,
            scheme: Scheme::Base,
        };
        let mut mix = MixSession::new(Mix {
            tenants: vec![tenant("a"), tenant("b"), tenant("c")],
            arrivals: ArrivalProcess::Fixed { stagger_secs: 5.0 },
            seed: 1,
            load_factor: 2.0,
        });
        assert_eq!(mix.distinct_sessions(), 1);
        let _ = mix.merged();
        assert_eq!(mix.sessions[0].generations(), 1);
    }

    #[test]
    fn arrival_processes_are_seed_deterministic_and_sorted_enough() {
        let k = 6;
        for proc in [
            ArrivalProcess::Fixed { stagger_secs: 3.0 },
            ArrivalProcess::Poisson { mean_gap_secs: 2.0 },
            ArrivalProcess::Bursty {
                burst: 2,
                gap_secs: 10.0,
                spread_secs: 1.0,
            },
            ArrivalProcess::LongTail {
                scale_secs: 1.0,
                shape: 1.5,
            },
        ] {
            let a = proc.offsets(42, k);
            let b = proc.offsets(42, k);
            assert_eq!(a.len(), k);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{proc:?} not deterministic");
            }
            assert!(a.iter().all(|o| o.is_finite() && *o >= 0.0), "{proc:?}");
            let c = proc.offsets(43, k);
            if proc.is_stochastic() {
                assert!(
                    a.iter().zip(&c).any(|(x, y)| x.to_bits() != y.to_bits()),
                    "{proc:?} ignored its seed"
                );
            } else {
                assert_eq!(a, c, "Fixed must ignore the seed");
            }
        }
    }

    #[test]
    fn contended_mix_runs_all_policies_deterministically() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let tenant = |name: &str, scheme| Tenant {
            name: name.into(),
            program: &p,
            cfg: &cfg,
            scheme,
        };
        let build = || {
            MixSession::new(Mix {
                tenants: vec![tenant("a", Scheme::CmTpm), tenant("b", Scheme::Base)],
                arrivals: ArrivalProcess::Fixed { stagger_secs: 2.0 },
                seed: 7,
                load_factor: 2.0,
            })
        };
        for policy in [
            MixPolicy::Base,
            MixPolicy::Tpm(TpmConfig::default()),
            MixPolicy::Adaptive(AdaptiveConfig::default()),
            MixPolicy::Directive(sdpm_sim::DirectiveConfig::default()),
        ] {
            let a = build().contended(&policy).expect("mix simulates");
            let b = build().contended(&policy).expect("mix simulates");
            assert_eq!(a, b, "{} mix not deterministic", policy.label());
            assert_eq!(a.per_tenant.len(), 2);
            assert!(a.requests > 0);
        }
    }

    #[test]
    fn mismatched_pool_sizes_are_rejected() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg_a = PipelineConfig::default();
        let cfg_b = PipelineConfig {
            disks: cfg_a.disks + 4,
            ..PipelineConfig::default()
        };
        let mut mix = MixSession::new(Mix {
            tenants: vec![
                Tenant {
                    name: "a".into(),
                    program: &p,
                    cfg: &cfg_a,
                    scheme: Scheme::Base,
                },
                Tenant {
                    name: "b".into(),
                    program: &p,
                    cfg: &cfg_b,
                    scheme: Scheme::Base,
                },
            ],
            arrivals: ArrivalProcess::Fixed { stagger_secs: 0.0 },
            seed: 0,
            load_factor: 1.0,
        });
        assert!(matches!(
            mix.contended(&MixPolicy::Base),
            Err(SimError::InvalidParams(_))
        ));
    }
}
