//! Compiler-directed proactive disk power management — the paper's
//! primary contribution (Section 3).
//!
//! Given an analyzable program (the `sdpm-ir` loop-nest IR), this crate
//! performs the three compiler steps of Fig. 1:
//!
//! 1. **Disk access pattern (DAP) extraction** ([`dap`]): combine the
//!    data access pattern with each array's disk layout to produce, per
//!    disk, the compact `<nest, iteration, idle|active>` transition list
//!    the paper shows in Section 3, and derive per-disk idle gaps on a
//!    global iteration timeline.
//! 2. **Cycle estimation** ([`estimate`]): convert iterations to time
//!    using per-nest cycles-per-iteration estimates. The paper measures
//!    these with `gethrtime` on the real machine; we model the
//!    measurement as the true value perturbed by seeded, per-nest noise —
//!    the source of Table 3's mispredicted speeds.
//! 3. **Explicit power-management call insertion** ([`insert`]): for each
//!    estimated gap that passes the break-even test, insert
//!    `spin_down`/`set_RPM` at the gap start and a **pre-activation**
//!    call `d = ceil(Tsu / (s + Tm))` iterations before the next access
//!    (the paper's formula (1)), producing an instrumented trace the
//!    simulator executes under [`sdpm_sim::Policy::Directive`].
//!
//! [`pipeline`] glues everything into the paper's seven evaluated schemes
//! and the four Section 6 transformation versions.
//!
//! # Example
//!
//! ```
//! use sdpm_core::{run_scheme, PipelineConfig, Scheme};
//! use sdpm_workloads::synth::checkpoint_loop;
//!
//! // A solver that computes for 20 s between full-state dumps.
//! let program = checkpoint_loop(4, 2, 20.0);
//! let cfg = PipelineConfig::default();
//! let base = run_scheme(&program, Scheme::Base, &cfg);
//! let cm = run_scheme(&program, Scheme::CmDrpm, &cfg);
//! // The compiler-managed scheme saves disk energy at ~no time cost.
//! assert!(cm.total_energy_j() < 0.8 * base.total_energy_j());
//! assert!(cm.exec_secs < 1.02 * base.exec_secs);
//! ```

#![forbid(unsafe_code)]
pub mod dap;
pub mod estimate;
pub mod insert;
pub mod pipeline;
sdpm_obs::prof_hooks!();
pub mod scenario;
pub mod session;

pub use dap::{build_dap, disk_gaps, Dap, DapEntry, DapState, GlobalGap, NestOffsets};
pub use estimate::{CycleEstimator, NoiseModel};
#[cfg(feature = "obs")]
pub use insert::insert_directives_with_recorder;
pub use insert::{insert_directives, nest_noise_factors, CmMode, Decision, InsertOutcome};
#[cfg(feature = "obs")]
pub use pipeline::run_scheme_with_recorder;
pub use pipeline::{
    run_all_schemes, run_scheme, run_scheme_with_artifacts, PipelineConfig, Scheme, SchemeArtifacts,
};
pub use scenario::{ArrivalProcess, Mix, MixSession, Tenant};
pub use session::Session;
