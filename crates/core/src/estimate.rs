//! Iteration-to-time conversion with a measurement-noise model.
//!
//! Section 3: "cycle estimates for the loop iterations are obtained from
//! the actual measurement of the program execution by using a
//! high-quality timer called gethrtime". A measurement of a real run is
//! close to, but not exactly, what the simulated run will experience —
//! the run measured is not the run simulated, the timer has overhead,
//! iterations vary. We model the compiler's view as the true
//! per-iteration time scaled by a per-nest factor `1 + eps`, with `eps`
//! drawn uniformly from `[-spread, +spread]` out of a seeded generator.
//! This is the *only* divergence between the compiler-managed schemes and
//! the oracles, and therefore the sole source of the paper's Table 3
//! mispredicted speeds.
//!
//! The compiler's timeline is also **compute-only**: measured cycles per
//! iteration do not see the simulator's device-level service times. This
//! systematically *underestimates* gap lengths, which biases the
//! compiler toward shallower (safer) RPM levels and earlier
//! pre-activations — conservative in exactly the way a real system would
//! be.

use crate::dap::{GlobalGap, NestOffsets};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdpm_ir::Program;
use serde::{Deserialize, Serialize};

/// Noise applied to the compiler's per-nest cycle estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Half-width of the uniform multiplicative *per-nest* error: the
    /// estimated per-iteration time of a nest is
    /// `true * (1 + U(-spread, +spread))` — the systematic part of a
    /// one-shot `gethrtime` measurement.
    pub spread: f64,
    /// Half-width of an additional *per-idle-gap* multiplicative error on
    /// estimated gap lengths. Models everything that differs between the
    /// measured run and the simulated run at sub-nest granularity (cache
    /// state, iteration variance); this is the knob the Table 3
    /// misprediction rates calibrate against.
    pub gap_jitter: f64,
    /// RNG seed; a fixed seed makes every figure bit-reproducible.
    pub seed: u64,
}

impl NoiseModel {
    /// No noise: estimates equal the truth.
    #[must_use]
    pub fn exact() -> Self {
        NoiseModel {
            spread: 0.0,
            gap_jitter: 0.0,
            seed: 0,
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            spread: 0.05,
            gap_jitter: 0.10,
            seed: 0x5DD5_1234_9ABC_DEF0,
        }
    }
}

/// The compiler's view of per-iteration time, one estimate per nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleEstimator {
    /// Estimated seconds per iteration, per nest.
    per_nest_secs: Vec<f64>,
}

impl CycleEstimator {
    /// Exact estimates (the truth): used to isolate insertion logic from
    /// estimation error in tests and ablations.
    #[must_use]
    pub fn exact(program: &Program) -> Self {
        CycleEstimator {
            per_nest_secs: (0..program.nests.len())
                .map(|n| program.iter_secs(n))
                .collect(),
        }
    }

    /// Noisy estimates per [`NoiseModel`].
    #[must_use]
    pub fn noisy(program: &Program, noise: &NoiseModel) -> Self {
        CycleEstimator::exact(program).with_noise(program.nests.len(), noise)
    }

    /// Estimates modeled on the paper's `gethrtime` measurement of a real
    /// run: per-iteration **wall** time, i.e. the nest's compute time plus
    /// the service time of the I/O it issues, divided by its iteration
    /// count. This is what makes the compiler's gap estimates track the
    /// simulator's actual timeline closely (the remaining error is the
    /// noise model).
    #[must_use]
    pub fn measured(
        program: &Program,
        trace: &sdpm_trace::Trace,
        params: &sdpm_disk::DiskParams,
    ) -> Self {
        let ladder = sdpm_disk::RpmLadder::new(params);
        let max = ladder.max_level();
        let mut service = vec![0.0f64; program.nests.len()];
        for r in trace.requests() {
            service[r.nest] += sdpm_disk::service_time_secs(
                params,
                &ladder,
                max,
                sdpm_disk::ServiceRequest {
                    size_bytes: r.size_bytes,
                    sequential: r.sequential,
                },
            );
        }
        let per_nest_secs = (0..program.nests.len())
            .map(|n| {
                let iters = program.nests[n].iter_count();
                if iters == 0 {
                    return program.iter_secs(n);
                }
                program.iter_secs(n) + service[n] / iters as f64
            })
            .collect();
        CycleEstimator { per_nest_secs }
    }

    /// Applies per-nest multiplicative noise to these estimates.
    #[must_use]
    pub fn with_noise(mut self, nests: usize, noise: &NoiseModel) -> Self {
        debug_assert_eq!(nests, self.per_nest_secs.len());
        let mut rng = StdRng::seed_from_u64(noise.seed);
        for s in &mut self.per_nest_secs {
            let eps: f64 = if noise.spread > 0.0 {
                rng.random_range(-noise.spread..noise.spread)
            } else {
                0.0
            };
            *s *= (1.0 + eps).max(0.05);
        }
        self
    }

    /// Estimated seconds per iteration of `nest`.
    #[must_use]
    pub fn iter_secs(&self, nest: usize) -> f64 {
        self.per_nest_secs[nest]
    }

    /// Estimated wall time of the global iteration interval
    /// `[gap.start_g, gap.end_g)`.
    #[must_use]
    pub fn gap_secs(&self, offsets: &NestOffsets, gap: GlobalGap) -> f64 {
        let mut total = 0.0;
        for (n, (&off, &count)) in offsets.offsets.iter().zip(&offsets.counts).enumerate() {
            let n_start = off;
            let n_end = off + count;
            let lo = gap.start_g.max(n_start);
            let hi = gap.end_g.min(n_end);
            if hi > lo {
                total += (hi - lo) as f64 * self.per_nest_secs[n];
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_ir::{LoopDim, LoopNest};
    use sdpm_layout::DiskPool;

    fn program() -> Program {
        let nest = |label: &str, count: u64, cycles: f64| LoopNest {
            label: label.into(),
            loops: vec![LoopDim::simple(count)],
            stmts: vec![],
            cycles_per_iter: cycles,
        };
        Program {
            name: "p".into(),
            arrays: vec![],
            nests: vec![nest("a", 100, 750.0), nest("b", 50, 1500.0)],
            clock_hz: 750.0e6,
        }
    }

    #[test]
    fn exact_estimator_matches_program() {
        let p = program();
        let e = CycleEstimator::exact(&p);
        assert!((e.iter_secs(0) - 1e-6).abs() < 1e-18);
        assert!((e.iter_secs(1) - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn gap_secs_spans_nests() {
        let p = program();
        p.validate(DiskPool::new(1)).unwrap();
        let e = CycleEstimator::exact(&p);
        let off = NestOffsets::of(&p);
        // Gap from iteration 90 of nest a to iteration 10 of nest b:
        // 10 us + 20 us.
        let g = GlobalGap {
            start_g: 90,
            end_g: 110,
        };
        assert!((e.gap_secs(&off, g) - 30e-6).abs() < 1e-15);
    }

    #[test]
    fn whole_program_gap_equals_compute_time() {
        let p = program();
        let e = CycleEstimator::exact(&p);
        let off = NestOffsets::of(&p);
        let g = GlobalGap {
            start_g: 0,
            end_g: off.total,
        };
        assert!((e.gap_secs(&off, g) - p.compute_secs()).abs() < 1e-15);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let p = program();
        let n = NoiseModel {
            spread: 0.2,
            gap_jitter: 0.0,
            seed: 42,
        };
        let a = CycleEstimator::noisy(&p, &n);
        let b = CycleEstimator::noisy(&p, &n);
        assert_eq!(a, b);
        let c = CycleEstimator::noisy(
            &p,
            &NoiseModel {
                spread: 0.2,
                gap_jitter: 0.0,
                seed: 43,
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn noise_stays_within_spread() {
        let p = program();
        for seed in 0..50 {
            let e = CycleEstimator::noisy(
                &p,
                &NoiseModel {
                    spread: 0.3,
                    gap_jitter: 0.0,
                    seed,
                },
            );
            for n in 0..2 {
                let ratio = e.iter_secs(n) / p.iter_secs(n);
                assert!(ratio > 0.7 - 1e-12 && ratio < 1.3 + 1e-12, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn zero_spread_noisy_equals_exact() {
        let p = program();
        let e = CycleEstimator::noisy(&p, &NoiseModel::exact());
        assert_eq!(e, CycleEstimator::exact(&p));
    }
}
