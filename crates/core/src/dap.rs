//! The Disk Access Pattern (DAP) and global idle gaps.
//!
//! Section 3: "The DAP lists, for each disk, the idle and active times in
//! a compact form", with entries like `<Nest 2, iteration 50, active>`.
//! [`build_dap`] derives exactly that from the per-nest activity analysis
//! of `sdpm-ir`; [`disk_gaps`] then flattens the program's nests onto one
//! **global iteration timeline** and returns each disk's maximal idle
//! intervals — the objects the break-even analysis and call insertion
//! consume. Gaps freely span nest boundaries (the paper's example DAP has
//! a disk idle from nest 1 through iteration 50 of nest 2).

use sdpm_ir::{ActivityMap, NestId, Program};
use serde::{Deserialize, Serialize};

/// Disk state change recorded by the DAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DapState {
    Active,
    Idle,
}

/// One DAP transition: from this `(nest, iteration)` point on, the disk
/// is in `state`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DapEntry {
    pub nest: NestId,
    pub iter: u64,
    pub state: DapState,
}

/// The whole-program DAP: one transition list per disk. Disks start
/// implicitly idle at `(nest 0, iteration 0)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dap {
    pub per_disk: Vec<Vec<DapEntry>>,
}

/// Builds the per-disk DAP transition lists from an activity map.
#[must_use]
pub fn build_dap(activity: &ActivityMap) -> Dap {
    let disks = activity.pool_size as usize;
    let mut per_disk: Vec<Vec<DapEntry>> = vec![Vec::new(); disks];
    for nest in &activity.nests {
        for (d, intervals) in nest.per_disk.iter().enumerate() {
            for iv in intervals {
                per_disk[d].push(DapEntry {
                    nest: nest.nest,
                    iter: iv.start,
                    state: DapState::Active,
                });
                // The idle transition at the end of the nest is implied by
                // the next nest's entries; emit it only when the interval
                // ends inside the nest.
                per_disk[d].push(DapEntry {
                    nest: nest.nest,
                    iter: iv.end,
                    state: DapState::Idle,
                });
            }
        }
    }
    // Collapse redundant adjacent transitions (an Idle at iter == next
    // Active's iter cancels; keeps the list compact like the paper's).
    for list in &mut per_disk {
        let mut compact: Vec<DapEntry> = Vec::with_capacity(list.len());
        for e in list.iter().copied() {
            if let Some(last) = compact.last() {
                if last.state == DapState::Idle
                    && e.state == DapState::Active
                    && last.nest == e.nest
                    && last.iter == e.iter
                {
                    compact.pop();
                    continue;
                }
            }
            compact.push(e);
        }
        *list = compact;
    }
    Dap { per_disk }
}

/// Global iteration offsets of a program's nests: nest `n` occupies global
/// indices `[offsets[n], offsets[n] + iter_count(n))`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NestOffsets {
    /// Start offset of each nest.
    pub offsets: Vec<u64>,
    /// Iteration count of each nest.
    pub counts: Vec<u64>,
    /// Total iterations in the program.
    pub total: u64,
}

impl NestOffsets {
    /// Computes the offsets of `program`'s nests in execution order.
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let mut offsets = Vec::with_capacity(program.nests.len());
        let mut counts = Vec::with_capacity(program.nests.len());
        let mut acc = 0u64;
        for n in &program.nests {
            offsets.push(acc);
            let c = n.iter_count();
            counts.push(c);
            acc += c;
        }
        NestOffsets {
            offsets,
            counts,
            total: acc,
        }
    }

    /// Global index of `(nest, iter)`.
    #[must_use]
    pub fn global(&self, nest: NestId, iter: u64) -> u64 {
        self.offsets[nest] + iter
    }

    /// Maps a global index back to `(nest, iter)`. Indices at or past the
    /// end clamp to one-past-the-last-nest's-end.
    #[must_use]
    pub fn locate(&self, g: u64) -> (NestId, u64) {
        match self.offsets.binary_search(&g) {
            Ok(n) => {
                // `g` is the start of nest n — unless that nest is empty,
                // in which case fall through to the next non-empty one.
                let mut n = n;
                while n + 1 < self.counts.len() && self.counts[n] == 0 {
                    n += 1;
                }
                (n, 0)
            }
            Err(0) => (0, 0),
            Err(i) => {
                let n = i - 1;
                let within = g - self.offsets[n];
                if within >= self.counts[n] && i < self.offsets.len() {
                    (i, 0)
                } else {
                    (n, within.min(self.counts[n].saturating_sub(1)))
                }
            }
        }
    }
}

/// A maximal idle interval of one disk on the global iteration timeline:
/// `[start_g, end_g)` in global iteration indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalGap {
    pub start_g: u64,
    pub end_g: u64,
}

impl GlobalGap {
    /// Iterations covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end_g - self.start_g
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end_g <= self.start_g
    }
}

/// Per-disk maximal idle gaps on the global timeline, including the
/// leading gap (before a disk's first access) and the trailing gap (after
/// its last).
#[must_use]
pub fn disk_gaps(activity: &ActivityMap, offsets: &NestOffsets) -> Vec<Vec<GlobalGap>> {
    let disks = activity.pool_size as usize;
    let mut out = vec![Vec::new(); disks];
    for (d, gaps) in out.iter_mut().enumerate() {
        let mut cursor = 0u64; // global index where the current idle began
        for nest in &activity.nests {
            for iv in &nest.per_disk[d] {
                let start_g = offsets.global(nest.nest, iv.start);
                let end_g = offsets.global(nest.nest, iv.end);
                if start_g > cursor {
                    gaps.push(GlobalGap {
                        start_g: cursor,
                        end_g: start_g,
                    });
                }
                cursor = cursor.max(end_g);
            }
        }
        if offsets.total > cursor {
            gaps.push(GlobalGap {
                start_g: cursor,
                end_g: offsets.total,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_ir::{disk_activity, AffineExpr, ArrayRef, LoopDim, LoopNest, Statement};
    use sdpm_layout::{ArrayFile, DiskId, DiskPool, StorageOrder, Striping};

    /// Two nests over a 2-disk pool: nest 0 scans A (disks 0,1), nest 1
    /// scans B (disk 1 only).
    fn program() -> Program {
        let a = ArrayFile {
            name: "A".into(),
            dims: vec![256],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 2,
                stripe_bytes: 1024,
            },
            base_block: 0,
        };
        let b = ArrayFile {
            name: "B".into(),
            dims: vec![128],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(1),
                stripe_factor: 1,
                stripe_bytes: 1024,
            },
            base_block: 100,
        };
        let nest = |label: &str, arr: usize, n: u64| LoopNest {
            label: label.into(),
            loops: vec![LoopDim::simple(n)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![ArrayRef::read(arr, vec![AffineExpr::var(1, 0)])],
            }],
            cycles_per_iter: 100.0,
        };
        Program {
            name: "two-phase".into(),
            arrays: vec![a, b],
            nests: vec![nest("n0", 0, 256), nest("n1", 1, 128)],
            clock_hz: Program::PAPER_CLOCK_HZ,
        }
    }

    #[test]
    fn dap_lists_transitions_in_paper_form() {
        let p = program();
        let pool = DiskPool::new(2);
        p.validate(pool).unwrap();
        let am = disk_activity(&p, pool);
        let dap = build_dap(&am);
        // Disk 0: active [0,128) of nest 0 (first stripe = 128 elements),
        // idle afterwards, never active in nest 1.
        assert_eq!(
            dap.per_disk[0],
            vec![
                DapEntry {
                    nest: 0,
                    iter: 0,
                    state: DapState::Active
                },
                DapEntry {
                    nest: 0,
                    iter: 128,
                    state: DapState::Idle
                },
            ]
        );
        // Disk 1: idle during nest 0's first stripe, active [128,256),
        // then active for all of nest 1 — and adjacent transitions at the
        // nest boundary stay as separate entries per nest.
        assert_eq!(dap.per_disk[1].len(), 4);
        assert_eq!(dap.per_disk[1][0].iter, 128);
        assert_eq!(dap.per_disk[1][0].state, DapState::Active);
    }

    #[test]
    fn offsets_cover_program() {
        let p = program();
        let off = NestOffsets::of(&p);
        assert_eq!(off.offsets, vec![0, 256]);
        assert_eq!(off.total, 384);
        assert_eq!(off.global(1, 5), 261);
        assert_eq!(off.locate(0), (0, 0));
        assert_eq!(off.locate(255), (0, 255));
        assert_eq!(off.locate(256), (1, 0));
        assert_eq!(off.locate(300), (1, 44));
    }

    #[test]
    fn gaps_span_nest_boundaries() {
        let p = program();
        let pool = DiskPool::new(2);
        let am = disk_activity(&p, pool);
        let off = NestOffsets::of(&p);
        let gaps = disk_gaps(&am, &off);
        // Disk 0: idle from global 128 to the end (384) — one gap crossing
        // the nest boundary, exactly the paper's cross-nest idleness.
        assert_eq!(
            gaps[0],
            vec![GlobalGap {
                start_g: 128,
                end_g: 384
            }]
        );
        // Disk 1: one leading gap [0,128), then busy to the end.
        assert_eq!(
            gaps[1],
            vec![GlobalGap {
                start_g: 0,
                end_g: 128
            }]
        );
    }

    #[test]
    fn unused_disk_gets_one_full_gap() {
        let p = program();
        let pool = DiskPool::new(4); // disks 2,3 unused
        p.validate(pool).unwrap();
        let am = disk_activity(&p, pool);
        let off = NestOffsets::of(&p);
        let gaps = disk_gaps(&am, &off);
        assert_eq!(
            gaps[3],
            vec![GlobalGap {
                start_g: 0,
                end_g: 384
            }]
        );
    }

    #[test]
    fn gaps_are_sorted_disjoint_and_nonempty() {
        let p = program();
        let pool = DiskPool::new(2);
        let am = disk_activity(&p, pool);
        let off = NestOffsets::of(&p);
        for disk_gaps in disk_gaps(&am, &off) {
            for w in disk_gaps.windows(2) {
                assert!(w[0].end_g < w[1].start_g);
            }
            for g in &disk_gaps {
                assert!(!g.is_empty());
                assert!(g.end_g <= off.total);
            }
        }
    }
}
