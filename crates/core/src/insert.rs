//! Explicit power-management call insertion (Section 3).
//!
//! For every disk idle gap the DAP exposes, the compiler estimates its
//! wall-clock length and, if the break-even analysis says the gap pays:
//!
//! * **CMTPM** — inserts `spin_down(disk)` at the gap start and a
//!   pre-activating `spin_up(disk)` before the next access;
//! * **CMDRPM** — inserts `set_RPM(level, disk)` with the energy-optimal
//!   level at the gap start and a pre-activating `set_RPM(max, disk)`
//!   before the next access.
//!
//! The compiler positions calls on its **estimated timeline** of the run:
//! per-nest compute time plus the predicted service time of each I/O
//! request, each scaled by the per-nest measurement-noise factor (the
//! paper's estimates come from a timed real execution, which sees I/O
//! stalls). The pre-activation call lands the paper's formula (1) lead
//! `Tsu + Tm` before the next access *on that timeline*; in code terms the
//! insertion point is a strip-mine split of the enclosing compute segment
//! (the paper: "we also stripe-mine the loop... to make explicit the point
//! at which the spin-up call is to be inserted").
//!
//! At chunk granularity the DAP's active/idle transitions coincide with
//! the generated trace's requests, so the gap walk below *is* the DAP
//! walk of [`crate::dap`], merely carried out on the event stream where
//! the insertion must happen anyway.

use crate::estimate::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdpm_disk::{
    best_rpm_for_gap, breakeven::tpm_gap_is_worthwhile, service_time_secs, DiskParams, RpmLadder,
    RpmLevel, ServiceRequest,
};
use sdpm_layout::DiskId;
use sdpm_trace::{AppEvent, PowerAction, Trace};
use serde::{Deserialize, Serialize};

/// Which family of power-management calls to insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmMode {
    /// `spin_down` / `spin_up` (CMTPM).
    Tpm,
    /// `set_RPM` (CMDRPM).
    Drpm,
}

/// One gap-level decision the compiler made, for diagnostics and the
/// Table 3 accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    pub disk: DiskId,
    /// The compiler's estimated gap length, seconds.
    pub estimated_secs: f64,
    /// Level chosen (CMDRPM) — `None` means "leave at full speed".
    pub level: Option<RpmLevel>,
    /// True if a spin-down was inserted (CMTPM).
    pub spun_down: bool,
}

/// Result of instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertOutcome {
    /// The instrumented trace (input trace plus `Power` events).
    pub trace: Trace,
    /// Number of power-management calls inserted.
    pub inserted: usize,
    /// Per-gap decisions for gaps that were considered.
    pub decisions: Vec<Decision>,
    /// Per-nest multiplicative noise factors (indexed by nest id) the
    /// planner used to build its estimated timeline. Exposed so an
    /// independent checker can re-derive the exact timeline the decisions
    /// were made against (see `sdpm-verify`).
    pub nest_factors: Vec<f64>,
}

/// Where a directive goes: before event `event_idx`, optionally inside
/// it (a `Compute` split at absolute iteration `split_iter`).
#[derive(Debug, Clone, Copy)]
struct Pinned {
    event_idx: usize,
    /// `None`: before the event. `Some(iter)`: split the compute event at
    /// this absolute iteration and insert between the halves.
    split_iter: Option<u64>,
    disk: DiskId,
    action: PowerAction,
}

/// Instruments `trace` with power-management calls for `mode`.
///
/// `noise` models the compiler's measurement error: one multiplicative
/// factor per nest, applied to the estimated timeline (both compute and
/// service portions, as a real timed run would be).
#[must_use]
pub fn insert_directives(
    trace: &Trace,
    params: &DiskParams,
    noise: &NoiseModel,
    mode: CmMode,
    overhead_secs: f64,
) -> InsertOutcome {
    let plan = plan_directives(trace, params, noise, mode, overhead_secs);
    apply_plan(trace, plan)
}

/// Like [`insert_directives`], but wraps the two compiler stages in
/// observability phase spans: `break-even-thresholding` (timeline
/// estimation plus per-gap decisions) and `directive-insertion` (weaving
/// the pinned calls into the event stream).
#[cfg(feature = "obs")]
#[must_use]
pub fn insert_directives_with_recorder(
    trace: &Trace,
    params: &DiskParams,
    noise: &NoiseModel,
    mode: CmMode,
    overhead_secs: f64,
    rec: &dyn sdpm_obs::Recorder,
) -> InsertOutcome {
    use sdpm_obs::Event;
    rec.record(&Event::PhaseStart {
        phase: "break-even-thresholding",
    });
    let plan = plan_directives(trace, params, noise, mode, overhead_secs);
    rec.record(&Event::PhaseEnd {
        phase: "break-even-thresholding",
    });
    rec.record(&Event::PhaseStart {
        phase: "directive-insertion",
    });
    let out = apply_plan(trace, plan);
    rec.record(&Event::PhaseEnd {
        phase: "directive-insertion",
    });
    out
}

/// Output of the decision stage, before weaving.
struct Plan {
    pinned: Vec<Pinned>,
    decisions: Vec<Decision>,
    max: RpmLevel,
    nest_factors: Vec<f64>,
}

/// The per-nest multiplicative noise factors the compiler's estimated
/// timeline applies, seeded like `CycleEstimator::with_noise`: one draw
/// per nest from `noise.seed`, clamped below at 0.05.
#[must_use]
pub fn nest_noise_factors(trace: &Trace, noise: &NoiseModel) -> Vec<f64> {
    let nest_count = trace
        .events
        .iter()
        .filter_map(AppEvent::nest)
        .max()
        .map_or(0, |n| n + 1);
    let mut rng = StdRng::seed_from_u64(noise.seed);
    (0..nest_count)
        .map(|_| {
            let eps: f64 = if noise.spread > 0.0 {
                rng.random_range(-noise.spread..noise.spread)
            } else {
                0.0
            };
            (1.0 + eps).max(0.05)
        })
        .collect()
}

/// Break-even thresholding: builds the estimated timeline, walks every
/// disk's gaps, and decides which power calls to pin where.
fn plan_directives(
    trace: &Trace,
    params: &DiskParams,
    noise: &NoiseModel,
    mode: CmMode,
    overhead_secs: f64,
) -> Plan {
    let ladder = RpmLadder::new(params);
    let max = ladder.max_level();

    // Per-nest noise factors, seeded like CycleEstimator::with_noise.
    let factors = nest_noise_factors(trace, noise);

    // Estimated timeline: start/end time of every event.
    let n_events = trace.events.len();
    let mut t_start = vec![0.0f64; n_events];
    let mut t_end = vec![0.0f64; n_events];
    let mut t = 0.0f64;
    for (i, e) in trace.events.iter().enumerate() {
        t_start[i] = t;
        let dur = match e {
            AppEvent::Compute { nest, secs, .. } => secs * factors[*nest],
            AppEvent::Io(r) => {
                factors[r.nest]
                    * service_time_secs(
                        params,
                        &ladder,
                        max,
                        ServiceRequest {
                            size_bytes: r.size_bytes,
                            sequential: r.sequential,
                        },
                    )
            }
            AppEvent::Power { .. } => 0.0,
        };
        t += dur;
        t_end[i] = t;
    }
    let t_total = t;

    // Per-disk request event indices.
    let pool = trace.pool_size as usize;
    let mut per_disk: Vec<Vec<usize>> = vec![Vec::new(); pool];
    for (i, e) in trace.events.iter().enumerate() {
        if let AppEvent::Io(r) = e {
            per_disk[r.disk.0 as usize].push(i);
        }
    }

    // Energy floor per inserted pair: each call costs the whole subsystem
    // `Tm` of wall time; require a clear predicted profit.
    let call_cost_j = 2.0 * overhead_secs * params.idle_power_w * pool as f64;
    let min_saved_j = 4.0 * call_cost_j;

    let mut pinned: Vec<Pinned> = Vec::new();
    let mut decisions: Vec<Decision> = Vec::new();

    // Per-gap jitter stream (drawn in deterministic disk/gap order).
    let mut gap_rng = StdRng::seed_from_u64(noise.seed.wrapping_add(0x9E37_79B9));

    for (d, reqs) in per_disk.iter().enumerate() {
        let disk = DiskId(d as u32);
        // Gap k runs from the end of request k-1 (or stream start) to the
        // start of request k (or stream end for the trailing gap).
        for k in 0..=reqs.len() {
            let (gap_start_t, start_pin) = if k == 0 {
                (0.0, 0usize)
            } else {
                (t_end[reqs[k - 1]], reqs[k - 1] + 1)
            };
            let (gap_end_t, end_event) = if k < reqs.len() {
                (t_start[reqs[k]], Some(reqs[k]))
            } else {
                (t_total, None)
            };
            let true_est = gap_end_t - gap_start_t;
            if true_est <= 0.0 {
                continue;
            }
            let est = if noise.gap_jitter > 0.0 {
                let eta: f64 = gap_rng.random_range(-noise.gap_jitter..noise.gap_jitter);
                (true_est * (1.0 + eta)).max(0.0)
            } else {
                true_est
            };
            let mut decision = Decision {
                disk,
                estimated_secs: est,
                level: None,
                spun_down: false,
            };
            let plan: Option<(PowerAction, PowerAction, f64)> = match mode {
                CmMode::Tpm => {
                    if tpm_gap_is_worthwhile(params, est) {
                        Some((
                            PowerAction::SpinDown,
                            PowerAction::SpinUp,
                            params.spin_up_secs,
                        ))
                    } else {
                        None
                    }
                }
                CmMode::Drpm => {
                    let choice = best_rpm_for_gap(&ladder, max, est);
                    if choice.level < max && choice.saved_j() > min_saved_j {
                        Some((
                            PowerAction::SetRpm(choice.level),
                            PowerAction::SetRpm(max),
                            ladder.transition_secs(choice.level, max),
                        ))
                    } else {
                        None
                    }
                }
            };
            let Some((down, up, tsu)) = plan else {
                decisions.push(decision);
                continue;
            };
            match end_event {
                None => {
                    // Trailing gap: no pre-activation needed.
                    pinned.push(Pinned {
                        event_idx: start_pin,
                        split_iter: None,
                        disk,
                        action: down,
                    });
                }
                Some(end_idx) => {
                    let target_t = gap_end_t - (tsu + overhead_secs);
                    if target_t <= gap_start_t {
                        // Gap cannot fit the pre-activation lead: leave
                        // the disk alone.
                        decisions.push(decision);
                        continue;
                    }
                    let preact = position_at(trace, &t_start, &t_end, end_idx, target_t);
                    pinned.push(Pinned {
                        event_idx: start_pin,
                        split_iter: None,
                        disk,
                        action: down,
                    });
                    pinned.push(Pinned {
                        disk,
                        action: up,
                        ..preact
                    });
                }
            }
            match mode {
                CmMode::Tpm => decision.spun_down = true,
                CmMode::Drpm => {
                    if let PowerAction::SetRpm(l) = down {
                        decision.level = Some(l);
                    }
                }
            }
            decisions.push(decision);
        }
    }

    Plan {
        pinned,
        decisions,
        max,
        nest_factors: factors,
    }
}

/// Directive insertion: orders the pinned calls and weaves them into the
/// event stream.
fn apply_plan(trace: &Trace, plan: Plan) -> InsertOutcome {
    let Plan {
        mut pinned,
        decisions,
        max,
        nest_factors,
    } = plan;
    // Deterministic weave order: by event position, "before event" pins
    // first, then intra-compute splits by iteration; pre-activations
    // ahead of slow-downs at the same point; then by disk.
    let rank = |a: &PowerAction| match a {
        PowerAction::SpinUp => 0,
        PowerAction::SetRpm(l) if *l == max => 0,
        _ => 1,
    };
    pinned.sort_by(|a, b| {
        a.event_idx
            .cmp(&b.event_idx)
            .then_with(|| a.split_iter.unwrap_or(0).cmp(&b.split_iter.unwrap_or(0)))
            .then_with(|| rank(&a.action).cmp(&rank(&b.action)))
            .then_with(|| a.disk.cmp(&b.disk))
    });

    let inserted = pinned.len();
    let events = weave(trace, &pinned);
    let out = Trace {
        name: trace.name.clone(),
        pool_size: trace.pool_size,
        events,
    };
    debug_assert_eq!(out.validate(), Ok(()));
    InsertOutcome {
        trace: out,
        inserted,
        decisions,
        nest_factors,
    }
}

/// Finds the stream position whose estimated time is `target_t`, looking
/// backward from `end_idx` (the request the pre-activation protects).
fn position_at(
    trace: &Trace,
    t_start: &[f64],
    t_end: &[f64],
    end_idx: usize,
    target_t: f64,
) -> Pinned {
    // Binary search over event start times in [0, end_idx].
    let slice = &t_start[..=end_idx];
    let i = slice.partition_point(|&s| s <= target_t).saturating_sub(1);
    match &trace.events[i] {
        AppEvent::Compute {
            nest: _,
            first_iter,
            iters,
            ..
        } if *iters > 1 && t_end[i] > t_start[i] => {
            let frac = ((target_t - t_start[i]) / (t_end[i] - t_start[i])).clamp(0.0, 1.0);
            let off = (frac * *iters as f64) as u64;
            if off == 0 {
                Pinned {
                    event_idx: i,
                    split_iter: None,
                    disk: DiskId(0),
                    action: PowerAction::SpinUp,
                }
            } else if off >= *iters {
                Pinned {
                    event_idx: i + 1,
                    split_iter: None,
                    disk: DiskId(0),
                    action: PowerAction::SpinUp,
                }
            } else {
                Pinned {
                    event_idx: i,
                    split_iter: Some(first_iter + off),
                    disk: DiskId(0),
                    action: PowerAction::SpinUp,
                }
            }
        }
        // Io/Power/degenerate-compute: insert before this event (slightly
        // early — conservative).
        _ => Pinned {
            event_idx: i,
            split_iter: None,
            disk: DiskId(0),
            action: PowerAction::SpinUp,
        },
    }
}

/// Merges pinned directives into the event stream.
fn weave(trace: &Trace, pinned: &[Pinned]) -> Vec<AppEvent> {
    let mut out = Vec::with_capacity(trace.events.len() + pinned.len());
    let mut di = 0usize;
    for (i, e) in trace.events.iter().enumerate() {
        // Pins strictly before this event.
        while di < pinned.len() && pinned[di].event_idx == i && pinned[di].split_iter.is_none() {
            out.push(AppEvent::Power {
                disk: pinned[di].disk,
                action: pinned[di].action,
            });
            di += 1;
        }
        // Intra-compute splits.
        if matches!(e, AppEvent::Compute { .. }) {
            let mut seg = *e;
            while di < pinned.len() && pinned[di].event_idx == i {
                let at = pinned[di]
                    .split_iter
                    .expect("before-event pins handled above");
                // Guard against duplicate split points.
                let (first_iter, iters) = match seg {
                    AppEvent::Compute {
                        first_iter, iters, ..
                    } => (first_iter, iters),
                    _ => unreachable!(),
                };
                if at <= first_iter || at >= first_iter + iters {
                    out.push(AppEvent::Power {
                        disk: pinned[di].disk,
                        action: pinned[di].action,
                    });
                    di += 1;
                    continue;
                }
                let (l, r) = seg.split_compute(at);
                out.push(l);
                out.push(AppEvent::Power {
                    disk: pinned[di].disk,
                    action: pinned[di].action,
                });
                di += 1;
                seg = r;
            }
            out.push(seg);
        } else {
            // Any split pins erroneously targeting a non-compute event
            // fall back to "before" semantics.
            while di < pinned.len() && pinned[di].event_idx == i {
                out.push(AppEvent::Power {
                    disk: pinned[di].disk,
                    action: pinned[di].action,
                });
                di += 1;
            }
            out.push(*e);
        }
    }
    while di < pinned.len() {
        out.push(AppEvent::Power {
            disk: pinned[di].disk,
            action: pinned[di].action,
        });
        di += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_disk::ultrastar36z15;
    use sdpm_ir::{AffineExpr, ArrayRef, LoopDim, LoopNest, Program, Statement};
    use sdpm_layout::{ArrayFile, DiskPool, StorageOrder, Striping};
    use sdpm_trace::{generate, TraceGenConfig};

    /// A program with an I/O phase (nest 0 scans A on disk 0), a long
    /// compute phase (nest 1, no I/O), and a second I/O phase (nest 2
    /// scans A again). Disk 0's mid gap spans the compute nest; disk 1 is
    /// never used.
    fn phased_program(compute_secs: f64) -> (Program, DiskPool) {
        let a = ArrayFile {
            name: "A".into(),
            dims: vec![4096],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 1,
                stripe_bytes: 64 * 1024,
            },
            base_block: 0,
        };
        let scan = |label: &str| LoopNest {
            label: label.into(),
            loops: vec![LoopDim::simple(4096)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
            }],
            cycles_per_iter: 750.0, // 1 us per iteration
        };
        let compute_iters = 10_000u64;
        let compute = LoopNest {
            label: "compute".into(),
            loops: vec![LoopDim::simple(compute_iters)],
            stmts: vec![],
            cycles_per_iter: compute_secs / compute_iters as f64 * 750.0e6,
        };
        let p = Program {
            name: "phased".into(),
            arrays: vec![a],
            nests: vec![scan("read"), compute, scan("reread")],
            clock_hz: Program::PAPER_CLOCK_HZ,
        };
        let pool = DiskPool::new(2);
        p.validate(pool).unwrap();
        (p, pool)
    }

    /// Generator config with chunks smaller than the 32 KiB array, so the
    /// reread misses the one-chunk cache and produces mid-gap requests.
    fn small_chunks() -> TraceGenConfig {
        TraceGenConfig {
            io_chunk_bytes: 8 * 1024,
            detect_sequential: false,
        }
    }

    fn setup(compute_secs: f64) -> Trace {
        let (p, pool) = phased_program(compute_secs);
        generate(&p, pool, small_chunks())
    }

    const TM: f64 = 50e-6;

    #[test]
    fn cmdrpm_inserts_slowdown_and_preactivation() {
        let t = setup(10.0);
        let params = ultrastar36z15();
        let out = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Drpm, TM);
        assert!(out.inserted >= 2, "inserted {}", out.inserted);
        let max = RpmLadder::new(&params).max_level();
        let powers: Vec<_> = out
            .trace
            .events
            .iter()
            .filter_map(|e| match e {
                AppEvent::Power { disk, action } => Some((*disk, *action)),
                _ => None,
            })
            .collect();
        let down = powers
            .iter()
            .position(|(d, a)| *d == DiskId(0) && matches!(a, PowerAction::SetRpm(l) if *l < max));
        let up = powers.iter().rposition(|(d, a)| {
            *d == DiskId(0) && matches!(a, PowerAction::SetRpm(l) if *l == max)
        });
        assert!(down.is_some() && up.is_some() && down < up);
    }

    #[test]
    fn cmtpm_ignores_sub_break_even_gaps() {
        let t = setup(10.0); // all gaps < 15.2 s on the estimated timeline
        let params = ultrastar36z15();
        let out = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Tpm, TM);
        // Disk 0's mid gap (~10 s) is below break-even; disk 1 never
        // appears in the trace at all (no requests -> no gap walk), so
        // nothing is inserted.
        assert_eq!(out.inserted, 0);
        assert!(out.decisions.iter().all(|d| !d.spun_down));
    }

    #[test]
    fn cmtpm_exploits_long_gaps() {
        let t = setup(60.0);
        let params = ultrastar36z15();
        let out = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Tpm, TM);
        let d0_down = out
            .decisions
            .iter()
            .any(|d| d.disk == DiskId(0) && d.spun_down);
        assert!(d0_down);
        let spin_ups = out
            .trace
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    AppEvent::Power {
                        action: PowerAction::SpinUp,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(spin_ups, 1, "one pre-activation for the mid gap");
    }

    #[test]
    fn preactivation_lead_is_respected_on_the_estimated_timeline() {
        let t = setup(30.0);
        let params = ultrastar36z15();
        let ladder = RpmLadder::new(&params);
        let max = ladder.max_level();
        let out = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Drpm, TM);
        // Find the restore-to-max on disk 0 and the first nest-2 request;
        // between them there must be at least the shift-back lead of
        // compute time.
        let mut acc = 0.0;
        let mut lead: Option<f64> = None;
        for e in &out.trace.events {
            match e {
                AppEvent::Compute { secs, .. } if lead.is_some() => {
                    acc += secs;
                }
                AppEvent::Power {
                    disk: DiskId(0),
                    action: PowerAction::SetRpm(l),
                } if *l == max => lead = Some(0.0),
                AppEvent::Io(r) if r.nest == 2 => break,
                _ => {}
            }
        }
        assert!(lead.is_some(), "pre-activation present");
        let full_swing = 10.0 * params.rpm_transition_secs_per_step;
        assert!(
            acc >= full_swing * 0.9,
            "accumulated lead {acc} below shift time {full_swing}"
        );
    }

    #[test]
    fn instrumented_trace_validates_and_preserves_io() {
        let t = setup(20.0);
        let params = ultrastar36z15();
        let out = insert_directives(&t, &params, &NoiseModel::default(), CmMode::Drpm, TM);
        assert_eq!(out.trace.validate(), Ok(()));
        assert_eq!(out.trace.stats().requests, t.stats().requests);
        assert!(
            (out.trace.stats().compute_secs - t.stats().compute_secs).abs() < 1e-9,
            "compute splitting must conserve time"
        );
    }

    #[test]
    fn exact_estimates_choose_the_per_gap_optimum() {
        let t = setup(8.0);
        let params = ultrastar36z15();
        let ladder = RpmLadder::new(&params);
        let out = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Drpm, TM);
        for d in &out.decisions {
            if let Some(level) = d.level {
                let ideal = best_rpm_for_gap(&ladder, ladder.max_level(), d.estimated_secs);
                assert_eq!(level, ideal.level);
            }
        }
    }

    #[test]
    fn noisy_estimates_can_differ_from_ideal() {
        // Sub-second gaps are the noise-sensitive regime.
        let t = setup(0.12);
        let params = ultrastar36z15();
        let exact = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Drpm, TM);
        let exact_levels: Vec<_> = exact.decisions.iter().map(|d| d.level).collect();
        let mut any_diff = false;
        for seed in 0..20 {
            let noisy = insert_directives(
                &t,
                &params,
                &NoiseModel {
                    spread: 0.5,
                    gap_jitter: 0.5,
                    seed,
                },
                CmMode::Drpm,
                TM,
            );
            if noisy.decisions.iter().map(|d| d.level).collect::<Vec<_>>() != exact_levels {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "50% noise must flip at least one level choice");
    }

    #[test]
    fn trailing_gap_gets_slowdown_without_preactivation() {
        // One request then a long compute tail.
        let (p, pool) = phased_program(1.0);
        let mut p = p;
        p.nests.truncate(2); // read + compute; no reread
        let t = generate(&p, pool, small_chunks());
        let params = ultrastar36z15();
        let out = insert_directives(&t, &params, &NoiseModel::exact(), CmMode::Drpm, TM);
        let max = RpmLadder::new(&params).max_level();
        let ups = out
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, AppEvent::Power { action: PowerAction::SetRpm(l), .. } if *l == max))
            .count();
        assert_eq!(ups, 0, "no request follows: no restore needed");
        let downs = out
            .trace
            .events
            .iter()
            .filter(
                |e| matches!(e, AppEvent::Power { action: PowerAction::SetRpm(l), .. } if *l < max),
            )
            .count();
        assert!(downs >= 1);
    }
}
