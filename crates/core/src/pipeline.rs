//! End-to-end pipeline: program -> (transform) -> trace -> instrumentation
//! -> simulation, for the paper's seven schemes (Section 4.2).

use crate::estimate::NoiseModel;
use crate::session::Session;
use sdpm_disk::DiskParams;
use sdpm_ir::Program;
use sdpm_sim::{DrpmConfig, SimReport, TpmConfig};
use sdpm_trace::TraceGenConfig;
use serde::{Deserialize, Serialize};

/// The seven evaluated schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// No power management (the normalization baseline).
    Base,
    /// Reactive traditional power management.
    Tpm,
    /// Oracle TPM.
    ITpm,
    /// Reactive dynamic RPM.
    Drpm,
    /// Oracle DRPM.
    IDrpm,
    /// Compiler-managed TPM (this paper).
    CmTpm,
    /// Compiler-managed DRPM (this paper).
    CmDrpm,
}

impl Scheme {
    /// The paper's scheme label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Base => "Base",
            Scheme::Tpm => "TPM",
            Scheme::ITpm => "ITPM",
            Scheme::Drpm => "DRPM",
            Scheme::IDrpm => "IDRPM",
            Scheme::CmTpm => "CMTPM",
            Scheme::CmDrpm => "CMDRPM",
        }
    }

    /// All schemes, in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Scheme; 7] {
        [
            Scheme::Base,
            Scheme::Tpm,
            Scheme::ITpm,
            Scheme::Drpm,
            Scheme::IDrpm,
            Scheme::CmTpm,
            Scheme::CmDrpm,
        ]
    }
}

/// Everything the pipeline needs besides the program itself. Defaults
/// reproduce Table 1's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Disk model (Table 1's Ultrastar 36Z15 by default).
    pub params: DiskParams,
    /// Disk pool size (Table 1 default: 8).
    pub disks: u32,
    /// Trace-generator configuration.
    pub gen: TraceGenConfig,
    /// Compiler cycle-estimation noise.
    pub noise: NoiseModel,
    /// Reactive DRPM controller parameters.
    pub drpm: DrpmConfig,
    /// Reactive TPM parameters.
    pub tpm: TpmConfig,
    /// Power-management call overhead `Tm`, seconds.
    pub overhead_secs: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            params: sdpm_disk::ultrastar36z15(),
            disks: 8,
            gen: TraceGenConfig::default(),
            noise: NoiseModel::default(),
            drpm: DrpmConfig::default(),
            tpm: TpmConfig::default(),
            overhead_secs: 50e-6,
        }
    }
}

/// Runs one scheme on `program` and reports. The report's `policy` field
/// carries the scheme label.
///
/// Each call opens a single-use [`Session`]; when running several
/// schemes over the same `(program, cfg)` pair, share one session
/// instead (or use [`run_all_schemes`]) so the trace is generated once.
#[must_use]
pub fn run_scheme(program: &Program, scheme: Scheme, cfg: &PipelineConfig) -> SimReport {
    Session::new(program, cfg).run(scheme)
}

/// One scheme run with the intermediate artifacts the independent checker
/// (`sdpm-verify`) needs: the exact trace the simulator consumed and, for
/// CM schemes, the insertion outcome (decisions + timeline noise factors).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeArtifacts {
    pub scheme: Scheme,
    /// The trace the simulator consumed (instrumented for CM schemes,
    /// the raw generated trace otherwise).
    pub trace: sdpm_trace::Trace,
    /// The instrumentation outcome (`Some` for CM schemes only).
    pub insertion: Option<crate::insert::InsertOutcome>,
    pub report: SimReport,
}

/// Like [`run_scheme`], but keeps the pipeline's intermediate artifacts
/// so they can be checked after the fact.
#[must_use]
pub fn run_scheme_with_artifacts(
    program: &Program,
    scheme: Scheme,
    cfg: &PipelineConfig,
) -> SchemeArtifacts {
    Session::new(program, cfg).run_with_artifacts(scheme)
}

/// Like [`run_scheme`], but streams pipeline phase spans and the
/// simulator's event sequence into `rec`.
///
/// Phases emitted: `dap-construction` (trace generation), for CM schemes
/// `break-even-thresholding` and `directive-insertion` (see
/// [`crate::insert::insert_directives_with_recorder`]), and `simulation`.
#[cfg(feature = "obs")]
#[must_use]
pub fn run_scheme_with_recorder(
    program: &Program,
    scheme: Scheme,
    cfg: &PipelineConfig,
    rec: &dyn sdpm_obs::Recorder,
) -> SimReport {
    Session::new(program, cfg).run_with_recorder(scheme, rec)
}

/// Runs all seven schemes, in order, sharing one [`Session`] so the
/// trace is generated exactly once.
#[must_use]
pub fn run_all_schemes(program: &Program, cfg: &PipelineConfig) -> Vec<(Scheme, SimReport)> {
    let mut session = Session::new(program, cfg);
    Scheme::all()
        .into_iter()
        .map(|s| (s, session.run(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_ir::{AffineExpr, ArrayRef, LoopDim, LoopNest, Statement};
    use sdpm_layout::{ArrayFile, DiskId, StorageOrder, Striping};

    /// An I/O + compute + I/O phased program over 4 disks, with the
    /// compute phase sized to `compute_secs`.
    fn phased(compute_secs: f64) -> Program {
        let a = ArrayFile {
            name: "A".into(),
            dims: vec![64 * 1024],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 4,
                stripe_bytes: 64 * 1024,
            },
            base_block: 0,
        };
        let scan = |label: &str| LoopNest {
            label: label.into(),
            loops: vec![LoopDim::simple(64 * 1024)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![ArrayRef::read(0, vec![AffineExpr::var(1, 0)])],
            }],
            cycles_per_iter: 75.0, // 0.1 us per element
        };
        let compute_iters = 100_000u64;
        let compute = LoopNest {
            label: "fft".into(),
            loops: vec![LoopDim::simple(compute_iters)],
            stmts: vec![],
            cycles_per_iter: compute_secs / compute_iters as f64 * 750.0e6,
        };
        Program {
            name: "phased".into(),
            arrays: vec![a],
            nests: vec![scan("read"), compute, scan("reread")],
            clock_hz: Program::PAPER_CLOCK_HZ,
        }
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            disks: 4,
            ..Default::default()
        }
    }

    #[test]
    fn scheme_ordering_matches_the_paper_shape() {
        let p = phased(10.0);
        let cfg = cfg();
        let base = run_scheme(&p, Scheme::Base, &cfg);
        let tpm = run_scheme(&p, Scheme::Tpm, &cfg);
        let itpm = run_scheme(&p, Scheme::ITpm, &cfg);
        let drpm = run_scheme(&p, Scheme::Drpm, &cfg);
        let idrpm = run_scheme(&p, Scheme::IDrpm, &cfg);
        let cmdrpm = run_scheme(&p, Scheme::CmDrpm, &cfg);
        // TPM family: the 10 s gaps are below break-even -> ~no savings,
        // no penalty.
        assert!(tpm.normalized_energy(&base) > 0.99);
        assert!(itpm.normalized_energy(&base) > 0.99);
        // DRPM family: all three save; the oracle lower-bounds CM, and CM
        // with exact-ish noise tracks it closely. (Reactive DRPM's energy
        // relative to the oracle is workload-dependent — with one long
        // gap and almost no I/O it can even win by never paying the
        // return transition; the paper-shape comparison lives in the
        // workload-level tests.)
        let e_drpm = drpm.normalized_energy(&base);
        let e_idrpm = idrpm.normalized_energy(&base);
        let e_cm = cmdrpm.normalized_energy(&base);
        assert!(e_idrpm < 0.9, "ideal must save on 10 s gaps: {e_idrpm}");
        assert!(e_drpm < 0.9, "reactive must save on 10 s gaps: {e_drpm}");
        assert!(
            e_idrpm <= e_cm + 1e-9,
            "ideal is a lower bound: {e_idrpm} vs {e_cm}"
        );
        assert!(
            e_cm < e_idrpm + 0.12,
            "CM stays close to the oracle: {e_cm} vs {e_idrpm}"
        );
        // Performance: ideal and CM near 1.0, reactive pays.
        assert!(idrpm.normalized_time(&base) < 1.001);
        assert!(cmdrpm.normalized_time(&base) < 1.02);
        assert!(drpm.normalized_time(&base) >= idrpm.normalized_time(&base) - 1e-9);
    }

    #[test]
    fn cm_scheme_report_carries_scheme_label() {
        let p = phased(5.0);
        let r = run_scheme(&p, Scheme::CmDrpm, &cfg());
        assert_eq!(r.policy, "CMDRPM");
    }

    #[test]
    fn run_all_produces_seven_reports() {
        let p = phased(5.0);
        let all = run_all_schemes(&p, &cfg());
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].0, Scheme::Base);
        // Determinism: same config, same numbers.
        let again = run_all_schemes(&p, &cfg());
        for ((_, a), (_, b)) in all.iter().zip(&again) {
            assert_eq!(a.total_energy_j().to_bits(), b.total_energy_j().to_bits());
            assert_eq!(a.exec_secs.to_bits(), b.exec_secs.to_bits());
        }
    }

    #[test]
    fn mispredictions_increase_with_noise() {
        let p = phased(8.0);
        let ladder = sdpm_disk::RpmLadder::new(&sdpm_disk::ultrastar36z15());
        let mut quiet_cfg = cfg();
        quiet_cfg.noise = NoiseModel::exact();
        let quiet = run_scheme(&p, Scheme::CmDrpm, &quiet_cfg);
        let mut loud_cfg = cfg();
        loud_cfg.noise = NoiseModel {
            spread: 0.3,
            gap_jitter: 0.6,
            seed: 7,
        };
        let loud = run_scheme(&p, Scheme::CmDrpm, &loud_cfg);
        let fq = quiet.mispredicted_speed_fraction(&ladder);
        let fl = loud.mispredicted_speed_fraction(&ladder);
        assert!(
            fq <= fl + 1e-9,
            "noise must not reduce mispredictions: {fq} vs {fl}"
        );
    }
}
