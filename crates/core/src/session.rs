//! Shared pipeline session: one trace generation per `(program, cfg)`.
//!
//! Evaluating the paper's seven schemes over a program replays the *same*
//! generated trace seven times; before this type existed every
//! [`run_scheme`](crate::run_scheme) call regenerated it from scratch. A
//! [`Session`] owns the cached base trace (validated once, at cache time)
//! and the per-mode instrumentation outcomes, so repeated scheme runs —
//! including the artifact- and recorder-carrying variants — pay for
//! generation and instrumentation at most once. Schemes consume the
//! cached traces through the [`sdpm_trace::EventSource`] stream interface
//! rather than a fresh materialization.
//!
//! Phase spans (`dap-construction`, the compiler phases) are emitted to a
//! recorder only when the corresponding work actually runs, i.e. on the
//! first scheme that needs it; cache hits are silent.

use crate::insert::{insert_directives, CmMode, InsertOutcome};
use crate::pipeline::{PipelineConfig, Scheme, SchemeArtifacts};
use sdpm_ir::Program;
use sdpm_layout::DiskPool;
use sdpm_sim::{DirectiveConfig, Policy, SimReport};
use sdpm_trace::{generate, Trace};

#[cfg(feature = "obs")]
pub(crate) type Obs<'a> = Option<&'a dyn sdpm_obs::Recorder>;
#[cfg(not(feature = "obs"))]
pub(crate) type Obs<'a> = Option<&'a std::convert::Infallible>;

/// Runs `f` inside a `PhaseStart`/`PhaseEnd` pair when recording.
#[cfg(feature = "obs")]
pub(crate) fn phase<T>(rec: Obs<'_>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let Some(r) = rec else { return f() };
    r.record(&sdpm_obs::Event::PhaseStart { phase: name });
    let out = f();
    r.record(&sdpm_obs::Event::PhaseEnd { phase: name });
    out
}

#[cfg(not(feature = "obs"))]
pub(crate) fn phase<T>(_rec: Obs<'_>, _name: &'static str, f: impl FnOnce() -> T) -> T {
    f()
}

/// One program + pipeline configuration, with the generated trace and
/// instrumentation outcomes cached across scheme runs.
#[derive(Debug)]
pub struct Session<'a> {
    program: &'a Program,
    cfg: &'a PipelineConfig,
    pool: DiskPool,
    base: Option<Trace>,
    /// Cached instrumentation, indexed by [`CmMode`] (`Tpm` = 0).
    cm: [Option<InsertOutcome>; 2],
    generations: usize,
}

impl<'a> Session<'a> {
    #[must_use]
    pub fn new(program: &'a Program, cfg: &'a PipelineConfig) -> Self {
        Session {
            program,
            cfg,
            pool: DiskPool::new(cfg.disks),
            base: None,
            cm: [None, None],
            generations: 0,
        }
    }

    /// How many times this session has generated a trace. Stays at 1 no
    /// matter how many schemes run — a probe for the regression tests.
    #[must_use]
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// The disk pool every scheme in this session simulates against.
    #[must_use]
    pub fn pool(&self) -> DiskPool {
        self.pool
    }

    /// The generated (un-instrumented) trace, produced and validated on
    /// first use.
    pub fn base_trace(&mut self) -> &Trace {
        self.base_trace_obs(None)
    }

    fn base_trace_obs(&mut self, rec: Obs<'_>) -> &Trace {
        if self.base.is_none() {
            let trace = phase(rec, "dap-construction", || {
                generate(self.program, self.pool, self.cfg.gen)
            });
            trace.validate().expect("generated trace must be valid");
            self.generations += 1;
            self.base = Some(trace);
        }
        self.base.as_ref().expect("just cached")
    }

    /// The instrumentation outcome for `mode`, computed (from the cached
    /// base trace) and validated on first use.
    pub fn instrumented(&mut self, mode: CmMode) -> &InsertOutcome {
        self.instrumented_obs(mode, None)
    }

    fn instrumented_obs(&mut self, mode: CmMode, rec: Obs<'_>) -> &InsertOutcome {
        let idx = match mode {
            CmMode::Tpm => 0,
            CmMode::Drpm => 1,
        };
        if self.cm[idx].is_none() {
            self.base_trace_obs(rec);
            let base = self.base.as_ref().expect("just cached");
            let out = instrument(base, self.cfg, mode, rec);
            out.trace
                .validate()
                .expect("instrumented trace must be valid");
            self.cm[idx] = Some(out);
        }
        self.cm[idx].as_ref().expect("just cached")
    }

    /// Runs one scheme against the session's cached traces. The report's
    /// `policy` field carries the scheme label.
    #[must_use]
    pub fn run(&mut self, scheme: Scheme) -> SimReport {
        self.run_full(scheme, None).report
    }

    /// Like [`Session::run`], but keeps the pipeline's intermediate
    /// artifacts so they can be checked after the fact.
    #[must_use]
    pub fn run_with_artifacts(&mut self, scheme: Scheme) -> SchemeArtifacts {
        self.run_full(scheme, None)
    }

    /// Like [`Session::run`], but streams pipeline phase spans and the
    /// simulator's event sequence into `rec`. Generation and compiler
    /// phases are emitted only if this run is the first to need them.
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn run_with_recorder(&mut self, scheme: Scheme, rec: &dyn sdpm_obs::Recorder) -> SimReport {
        self.run_full(scheme, Some(rec)).report
    }

    pub(crate) fn run_full(&mut self, scheme: Scheme, rec: Obs<'_>) -> SchemeArtifacts {
        let cfg = self.cfg;
        let pool = self.pool;
        let (trace, insertion, mut report) = match scheme {
            Scheme::Base => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::Base, rec);
                (t.clone(), None, r)
            }
            Scheme::Tpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::Tpm(cfg.tpm), rec);
                (t.clone(), None, r)
            }
            Scheme::ITpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::IdealTpm, rec);
                (t.clone(), None, r)
            }
            Scheme::Drpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::Drpm(cfg.drpm), rec);
                (t.clone(), None, r)
            }
            Scheme::IDrpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::IdealDrpm, rec);
                (t.clone(), None, r)
            }
            Scheme::CmTpm | Scheme::CmDrpm => {
                let mode = if scheme == Scheme::CmTpm {
                    CmMode::Tpm
                } else {
                    CmMode::Drpm
                };
                let out = self.instrumented_obs(mode, rec);
                let r = sim(
                    &out.trace,
                    cfg,
                    pool,
                    &Policy::Directive(DirectiveConfig {
                        overhead_secs: cfg.overhead_secs,
                    }),
                    rec,
                );
                (out.trace.clone(), Some(out.clone()), r)
            }
        };
        report.policy = scheme.label().to_string();
        SchemeArtifacts {
            scheme,
            trace,
            insertion,
            report,
        }
    }
}

/// Simulation under a `simulation` phase span, streaming into the
/// recorder when one is present. The trace was validated when the
/// session cached it, so it enters the simulator through the stream
/// interface ([`sdpm_sim::simulate_source`]) without a second
/// validation pass.
fn sim(
    trace: &Trace,
    cfg: &PipelineConfig,
    pool: DiskPool,
    policy: &Policy,
    rec: Obs<'_>,
) -> SimReport {
    #[cfg(feature = "obs")]
    if let Some(r) = rec {
        return phase(rec, "simulation", || {
            sdpm_sim::simulate_source_with_recorder(trace, &cfg.params, pool, policy, r)
        });
    }
    let _ = rec;
    sdpm_sim::simulate_source(trace, &cfg.params, pool, policy)
}

/// `insert_directives`, routed through the recording variant when a
/// recorder is present (it emits the two compiler phase spans itself).
fn instrument(trace: &Trace, cfg: &PipelineConfig, mode: CmMode, rec: Obs<'_>) -> InsertOutcome {
    #[cfg(feature = "obs")]
    if let Some(r) = rec {
        return crate::insert::insert_directives_with_recorder(
            trace,
            &cfg.params,
            &cfg.noise,
            mode,
            cfg.overhead_secs,
            r,
        );
    }
    let _ = rec;
    insert_directives(trace, &cfg.params, &cfg.noise, mode, cfg.overhead_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_scheme;
    use sdpm_workloads::synth::checkpoint_loop;

    #[test]
    fn seven_schemes_share_one_generation() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        assert_eq!(session.generations(), 0);
        for scheme in Scheme::all() {
            let _ = session.run(scheme);
        }
        assert_eq!(
            session.generations(),
            1,
            "every scheme must reuse the cached trace"
        );
    }

    #[test]
    fn session_runs_match_standalone_runs_bitwise() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        for scheme in Scheme::all() {
            let shared = session.run(scheme);
            let standalone = run_scheme(&p, scheme, &cfg);
            assert_eq!(
                shared.total_energy_j().to_bits(),
                standalone.total_energy_j().to_bits(),
                "{}: energy drifted",
                scheme.label()
            );
            assert_eq!(
                shared.exec_secs.to_bits(),
                standalone.exec_secs.to_bits(),
                "{}: exec time drifted",
                scheme.label()
            );
        }
    }

    #[test]
    fn instrumentation_is_cached_per_mode() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        let first = session.instrumented(CmMode::Drpm).clone();
        let again = session.instrumented(CmMode::Drpm);
        assert_eq!(&first, again);
        assert_eq!(session.generations(), 1);
        // The other mode reuses the same base trace.
        let _ = session.instrumented(CmMode::Tpm);
        assert_eq!(session.generations(), 1);
    }
}
