//! Shared pipeline session: one trace generation per `(program, cfg)`.
//!
//! Evaluating the paper's seven schemes over a program replays the *same*
//! generated trace seven times; before this type existed every
//! [`run_scheme`](crate::run_scheme) call regenerated it from scratch. A
//! [`Session`] owns the cached base trace (validated once, at cache time)
//! and the per-mode instrumentation outcomes, so repeated scheme runs —
//! including the artifact- and recorder-carrying variants — pay for
//! generation and instrumentation at most once. Schemes consume the
//! cached traces through the [`sdpm_trace::EventSource`] stream interface
//! rather than a fresh materialization.
//!
//! Phase spans (`dap-construction`, the compiler phases) are emitted to a
//! recorder only when the corresponding work actually runs, i.e. on the
//! first scheme that needs it; cache hits are silent.

use crate::insert::{insert_directives, CmMode, InsertOutcome};
use crate::pipeline::{PipelineConfig, Scheme, SchemeArtifacts};
use sdpm_fault::FaultPlan;
use sdpm_ir::Program;
use sdpm_layout::DiskPool;
use sdpm_sim::{DirectiveConfig, Policy, SimError, SimReport};
use sdpm_trace::{compress, generate, generate_runs, RunTrace, Trace};

#[cfg(feature = "obs")]
pub(crate) type Obs<'a> = Option<&'a dyn sdpm_obs::Recorder>;
#[cfg(not(feature = "obs"))]
pub(crate) type Obs<'a> = Option<&'a std::convert::Infallible>;

/// Runs `f` inside a `PhaseStart`/`PhaseEnd` pair when recording.
#[cfg(feature = "obs")]
pub(crate) fn phase<T>(rec: Obs<'_>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let Some(r) = rec else { return f() };
    r.record(&sdpm_obs::Event::PhaseStart { phase: name });
    let out = f();
    r.record(&sdpm_obs::Event::PhaseEnd { phase: name });
    out
}

#[cfg(not(feature = "obs"))]
pub(crate) fn phase<T>(_rec: Obs<'_>, _name: &'static str, f: impl FnOnce() -> T) -> T {
    f()
}

/// One program + pipeline configuration, with the generated trace and
/// instrumentation outcomes cached across scheme runs.
#[derive(Debug)]
pub struct Session<'a> {
    program: &'a Program,
    cfg: &'a PipelineConfig,
    pool: DiskPool,
    base: Option<Trace>,
    /// Cached instrumentation, indexed by [`CmMode`] (`Tpm` = 0).
    cm: [Option<InsertOutcome>; 2],
    /// Run-compressed base trace (analytic generator).
    base_runs: Option<RunTrace>,
    /// Run-compressed instrumented traces, indexed like `cm`.
    cm_runs: [Option<RunTrace>; 2],
    generations: usize,
    run_generations: usize,
}

impl<'a> Session<'a> {
    #[must_use]
    pub fn new(program: &'a Program, cfg: &'a PipelineConfig) -> Self {
        Session {
            program,
            cfg,
            pool: DiskPool::new(cfg.disks),
            base: None,
            cm: [None, None],
            base_runs: None,
            cm_runs: [None, None],
            generations: 0,
            run_generations: 0,
        }
    }

    /// How many times this session has generated a trace. Stays at 1 no
    /// matter how many schemes run — a probe for the regression tests.
    #[must_use]
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// The disk pool every scheme in this session simulates against.
    #[must_use]
    pub fn pool(&self) -> DiskPool {
        self.pool
    }

    /// The generated (un-instrumented) trace, produced and validated on
    /// first use.
    pub fn base_trace(&mut self) -> &Trace {
        self.base_trace_obs(None)
    }

    fn base_trace_obs(&mut self, rec: Obs<'_>) -> &Trace {
        if self.base.is_none() {
            let _sp = crate::prof::span("session.generate");
            let trace = if let Some(rt) = &self.base_runs {
                // The analytic run form is already cached; lowering it is
                // bit-exact with the walk generator and O(#events), so a
                // fast-path session never walks the program a second time.
                rt.lower()
            } else {
                phase(rec, "dap-construction", || {
                    generate(self.program, self.pool, self.cfg.gen)
                })
            };
            trace.validate().expect("generated trace must be valid");
            self.generations += 1;
            self.base = Some(trace);
        }
        self.base.as_ref().expect("just cached")
    }

    /// How many times this session has generated a *run-compressed*
    /// trace analytically. Stays at 1 across repeated fast-path scheme
    /// runs — the fast-path analogue of [`Session::generations`].
    #[must_use]
    pub fn run_generations(&self) -> usize {
        self.run_generations
    }

    /// The run-compressed base trace, produced by the analytic generator
    /// ([`sdpm_trace::generate_runs`]) on first use. Lowering it yields
    /// the per-event [`Session::base_trace`] bit for bit, so it is not
    /// re-validated here.
    pub fn base_runs(&mut self) -> &RunTrace {
        if self.base_runs.is_none() {
            let _sp = crate::prof::span("session.generate_runs");
            self.run_generations += 1;
            self.base_runs = Some(generate_runs(self.program, self.pool, self.cfg.gen));
        }
        self.base_runs.as_ref().expect("just cached")
    }

    /// The run-compressed form of the instrumented trace for `mode`,
    /// compressed from the cached per-event instrumentation outcome on
    /// first use (directive insertion itself is a per-event pass).
    pub fn instrumented_runs(&mut self, mode: CmMode) -> &RunTrace {
        let idx = match mode {
            CmMode::Tpm => 0,
            CmMode::Drpm => 1,
        };
        if self.cm_runs[idx].is_none() {
            // Ensure the analytic base form exists first: directive
            // insertion needs the per-event base trace, and with the run
            // form cached it is recovered by lowering instead of a second
            // program walk.
            let _ = self.base_runs();
            let rt = compress(&self.instrumented(mode).trace);
            self.cm_runs[idx] = Some(rt);
        }
        self.cm_runs[idx].as_ref().expect("just cached")
    }

    /// The instrumentation outcome for `mode`, computed (from the cached
    /// base trace) and validated on first use.
    pub fn instrumented(&mut self, mode: CmMode) -> &InsertOutcome {
        self.instrumented_obs(mode, None)
    }

    fn instrumented_obs(&mut self, mode: CmMode, rec: Obs<'_>) -> &InsertOutcome {
        let idx = match mode {
            CmMode::Tpm => 0,
            CmMode::Drpm => 1,
        };
        if self.cm[idx].is_none() {
            self.base_trace_obs(rec);
            let _sp = crate::prof::span("session.instrument");
            let base = self.base.as_ref().expect("just cached");
            let out = instrument(base, self.cfg, mode, rec);
            out.trace
                .validate()
                .expect("instrumented trace must be valid");
            self.cm[idx] = Some(out);
        }
        self.cm[idx].as_ref().expect("just cached")
    }

    /// Runs one scheme against the session's cached traces. The report's
    /// `policy` field carries the scheme label.
    #[must_use]
    pub fn run(&mut self, scheme: Scheme) -> SimReport {
        self.run_full(scheme, None).report
    }

    /// Like [`Session::run`], but keeps the pipeline's intermediate
    /// artifacts so they can be checked after the fact.
    #[must_use]
    pub fn run_with_artifacts(&mut self, scheme: Scheme) -> SchemeArtifacts {
        self.run_full(scheme, None)
    }

    /// Like [`Session::run`], but streams pipeline phase spans and the
    /// simulator's event sequence into `rec`. Generation and compiler
    /// phases are emitted only if this run is the first to need them.
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn run_with_recorder(&mut self, scheme: Scheme, rec: &dyn sdpm_obs::Recorder) -> SimReport {
        self.run_full(scheme, Some(rec)).report
    }

    /// Runs one scheme through the O(#runs) fast path: the session's
    /// cached run-compressed traces drive [`sdpm_sim::simulate_runs`].
    /// The report is bit-identical to [`Session::run`] on the same
    /// scheme; only [`sdpm_sim::SimReport::sim_path`] differs.
    #[must_use]
    pub fn run_compressed(&mut self, scheme: Scheme) -> SimReport {
        let cfg = self.cfg;
        let pool = self.pool;
        let _sp = crate::prof::span("session.simulate_runs");
        let mut report = match scheme {
            Scheme::Base => {
                sdpm_sim::simulate_runs(self.base_runs(), &cfg.params, pool, &Policy::Base)
            }
            Scheme::Tpm => {
                sdpm_sim::simulate_runs(self.base_runs(), &cfg.params, pool, &Policy::Tpm(cfg.tpm))
            }
            Scheme::ITpm => {
                sdpm_sim::simulate_runs(self.base_runs(), &cfg.params, pool, &Policy::IdealTpm)
            }
            Scheme::Drpm => sdpm_sim::simulate_runs(
                self.base_runs(),
                &cfg.params,
                pool,
                &Policy::Drpm(cfg.drpm),
            ),
            Scheme::IDrpm => {
                sdpm_sim::simulate_runs(self.base_runs(), &cfg.params, pool, &Policy::IdealDrpm)
            }
            Scheme::CmTpm | Scheme::CmDrpm => {
                let mode = if scheme == Scheme::CmTpm {
                    CmMode::Tpm
                } else {
                    CmMode::Drpm
                };
                let policy = Policy::Directive(DirectiveConfig {
                    overhead_secs: cfg.overhead_secs,
                });
                sdpm_sim::simulate_runs(self.instrumented_runs(mode), &cfg.params, pool, &policy)
            }
        };
        report.policy = scheme.label().to_string();
        report
    }

    /// Runs one scheme with an optional fault-injection plan, returning
    /// typed errors instead of panicking on malformed inputs. With
    /// `faults: None` the report is bit-identical to [`Session::run`];
    /// with a plan, injected faults are tallied in
    /// [`sdpm_sim::SimReport::faults`] and the run still completes
    /// (graceful degradation, never a panic).
    pub fn run_with_faults(
        &mut self,
        scheme: Scheme,
        faults: Option<&FaultPlan>,
    ) -> Result<SimReport, SimError> {
        let cfg = self.cfg;
        let pool = self.pool;
        let mut report = match scheme {
            Scheme::Base => {
                let t = self.base_trace();
                sdpm_sim::try_simulate_source_faulted(t, &cfg.params, pool, &Policy::Base, faults)?
            }
            Scheme::Tpm => {
                let t = self.base_trace();
                sdpm_sim::try_simulate_source_faulted(
                    t,
                    &cfg.params,
                    pool,
                    &Policy::Tpm(cfg.tpm),
                    faults,
                )?
            }
            Scheme::ITpm => {
                let t = self.base_trace();
                sdpm_sim::try_simulate_source_faulted(
                    t,
                    &cfg.params,
                    pool,
                    &Policy::IdealTpm,
                    faults,
                )?
            }
            Scheme::Drpm => {
                let t = self.base_trace();
                sdpm_sim::try_simulate_source_faulted(
                    t,
                    &cfg.params,
                    pool,
                    &Policy::Drpm(cfg.drpm),
                    faults,
                )?
            }
            Scheme::IDrpm => {
                let t = self.base_trace();
                sdpm_sim::try_simulate_source_faulted(
                    t,
                    &cfg.params,
                    pool,
                    &Policy::IdealDrpm,
                    faults,
                )?
            }
            Scheme::CmTpm | Scheme::CmDrpm => {
                let mode = if scheme == Scheme::CmTpm {
                    CmMode::Tpm
                } else {
                    CmMode::Drpm
                };
                let policy = Policy::Directive(DirectiveConfig {
                    overhead_secs: cfg.overhead_secs,
                });
                let t = &self.instrumented(mode).trace;
                sdpm_sim::try_simulate_source_faulted(t, &cfg.params, pool, &policy, faults)?
            }
        };
        report.policy = scheme.label().to_string();
        Ok(report)
    }

    pub(crate) fn run_full(&mut self, scheme: Scheme, rec: Obs<'_>) -> SchemeArtifacts {
        let cfg = self.cfg;
        let pool = self.pool;
        let (trace, insertion, mut report) = match scheme {
            Scheme::Base => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::Base, rec);
                (t.clone(), None, r)
            }
            Scheme::Tpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::Tpm(cfg.tpm), rec);
                (t.clone(), None, r)
            }
            Scheme::ITpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::IdealTpm, rec);
                (t.clone(), None, r)
            }
            Scheme::Drpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::Drpm(cfg.drpm), rec);
                (t.clone(), None, r)
            }
            Scheme::IDrpm => {
                let t = self.base_trace_obs(rec);
                let r = sim(t, cfg, pool, &Policy::IdealDrpm, rec);
                (t.clone(), None, r)
            }
            Scheme::CmTpm | Scheme::CmDrpm => {
                let mode = if scheme == Scheme::CmTpm {
                    CmMode::Tpm
                } else {
                    CmMode::Drpm
                };
                let out = self.instrumented_obs(mode, rec);
                let r = sim(
                    &out.trace,
                    cfg,
                    pool,
                    &Policy::Directive(DirectiveConfig {
                        overhead_secs: cfg.overhead_secs,
                    }),
                    rec,
                );
                (out.trace.clone(), Some(out.clone()), r)
            }
        };
        report.policy = scheme.label().to_string();
        SchemeArtifacts {
            scheme,
            trace,
            insertion,
            report,
        }
    }
}

/// Simulation under a `simulation` phase span, streaming into the
/// recorder when one is present. The trace was validated when the
/// session cached it, so it enters the simulator through the stream
/// interface ([`sdpm_sim::simulate_source`]) without a second
/// validation pass.
fn sim(
    trace: &Trace,
    cfg: &PipelineConfig,
    pool: DiskPool,
    policy: &Policy,
    rec: Obs<'_>,
) -> SimReport {
    let _sp = crate::prof::span("session.simulate");
    #[cfg(feature = "obs")]
    if let Some(r) = rec {
        return phase(rec, "simulation", || {
            sdpm_sim::simulate_source_with_recorder(trace, &cfg.params, pool, policy, r)
        });
    }
    let _ = rec;
    sdpm_sim::simulate_source(trace, &cfg.params, pool, policy)
}

/// `insert_directives`, routed through the recording variant when a
/// recorder is present (it emits the two compiler phase spans itself).
fn instrument(trace: &Trace, cfg: &PipelineConfig, mode: CmMode, rec: Obs<'_>) -> InsertOutcome {
    #[cfg(feature = "obs")]
    if let Some(r) = rec {
        return crate::insert::insert_directives_with_recorder(
            trace,
            &cfg.params,
            &cfg.noise,
            mode,
            cfg.overhead_secs,
            r,
        );
    }
    let _ = rec;
    insert_directives(trace, &cfg.params, &cfg.noise, mode, cfg.overhead_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_scheme;
    use sdpm_workloads::synth::checkpoint_loop;

    #[test]
    fn seven_schemes_share_one_generation() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        assert_eq!(session.generations(), 0);
        for scheme in Scheme::all() {
            let _ = session.run(scheme);
        }
        assert_eq!(
            session.generations(),
            1,
            "every scheme must reuse the cached trace"
        );
    }

    #[test]
    fn session_runs_match_standalone_runs_bitwise() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        for scheme in Scheme::all() {
            let shared = session.run(scheme);
            let standalone = run_scheme(&p, scheme, &cfg);
            assert_eq!(
                shared.total_energy_j().to_bits(),
                standalone.total_energy_j().to_bits(),
                "{}: energy drifted",
                scheme.label()
            );
            assert_eq!(
                shared.exec_secs.to_bits(),
                standalone.exec_secs.to_bits(),
                "{}: exec time drifted",
                scheme.label()
            );
        }
    }

    #[test]
    fn run_compressed_matches_per_event_bitwise_for_all_schemes() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        for scheme in Scheme::all() {
            let slow = session.run(scheme);
            let fast = session.run_compressed(scheme);
            assert_eq!(
                fast.sim_path,
                sdpm_sim::SimPath::RunCompressed,
                "{}: fast path must be tagged",
                scheme.label()
            );
            assert_eq!(slow, fast, "{}: reports differ", scheme.label());
            assert_eq!(
                slow.total_energy_j().to_bits(),
                fast.total_energy_j().to_bits(),
                "{}: energy drifted",
                scheme.label()
            );
        }
        assert_eq!(session.run_generations(), 1, "one analytic generation");
    }

    #[test]
    fn base_runs_lower_to_the_cached_base_trace() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        let lowered = session.base_runs().lower();
        let base = session.base_trace();
        assert_eq!(base.events, lowered.events);
    }

    #[test]
    fn run_with_faults_disabled_is_bit_exact_with_run() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        for scheme in Scheme::all() {
            let clean = session.run(scheme);
            let faultless = session
                .run_with_faults(scheme, None)
                .expect("fault-free run succeeds");
            assert_eq!(clean, faultless, "{}: reports differ", scheme.label());
            assert_eq!(
                clean.total_energy_j().to_bits(),
                faultless.total_energy_j().to_bits(),
                "{}: energy drifted",
                scheme.label()
            );
            assert_eq!(faultless.faults.total(), 0, "{}", scheme.label());
        }
    }

    #[test]
    fn run_with_faults_is_deterministic() {
        use sdpm_fault::{FaultConfig, FaultPlan};
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        let plan = FaultPlan::new(FaultConfig::uniform(7, 0.2));
        for scheme in Scheme::all() {
            let a = session
                .run_with_faults(scheme, Some(&plan))
                .expect("faulted run degrades gracefully");
            let b = session
                .run_with_faults(scheme, Some(&plan))
                .expect("faulted run degrades gracefully");
            assert_eq!(a, b, "{}: fault runs must be deterministic", scheme.label());
        }
    }

    #[test]
    fn instrumentation_is_cached_per_mode() {
        let p = checkpoint_loop(2, 2, 8.0);
        let cfg = PipelineConfig::default();
        let mut session = Session::new(&p, &cfg);
        let first = session.instrumented(CmMode::Drpm).clone();
        let again = session.instrumented(CmMode::Drpm);
        assert_eq!(&first, again);
        assert_eq!(session.generations(), 1);
        // The other mode reuses the same base trace.
        let _ = session.instrumented(CmMode::Tpm);
        assert_eq!(session.generations(), 1);
    }
}
