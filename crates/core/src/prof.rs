//! Host-profiling shim: with the `obs` feature on this re-exports the
//! `sdpm-obs` profiling spine (hierarchical wall-clock spans plus
//! throughput counters); with it off every call site compiles against
//! inert zero-sized no-ops and vanishes entirely, so the hot paths are
//! byte-identical to the unhooked build.

#[cfg(feature = "obs")]
pub(crate) use sdpm_obs::prof::span;

#[cfg(not(feature = "obs"))]
mod stub {
    /// Inert zero-sized stand-in for `sdpm_obs::prof::SpanGuard`.
    pub struct SpanGuard;

    #[inline(always)]
    #[must_use]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }
}

#[cfg(not(feature = "obs"))]
pub(crate) use stub::span;

#[cfg(all(test, not(feature = "obs")))]
mod tests {
    /// The compile-away contract: with `obs` off the guard is a ZST and
    /// the hook functions are inlineable no-ops — a hooked hot loop
    /// compiles to the same code as an unhooked one.
    #[test]
    fn stub_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<super::stub::SpanGuard>(), 0);
        let g = super::span("x");
        drop(g);
    }
}
