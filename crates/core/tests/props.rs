//! Property tests for the instrumentation pass.

use proptest::prelude::*;
use sdpm_core::{insert_directives, CmMode, NoiseModel};
use sdpm_disk::{ultrastar36z15, RpmLadder};
use sdpm_layout::DiskId;
use sdpm_trace::{AppEvent, IoRequest, PowerAction, ReqKind, Trace};

/// Random alternating compute/IO traces (valid by construction).
fn trace_strategy() -> impl Strategy<Value = Trace> {
    let pool = 4u32;
    proptest::collection::vec(
        (0.0f64..20.0, 0..pool, 1u64..256 * 1024, any::<bool>()),
        1..40,
    )
    .prop_map(move |items| {
        let mut events = Vec::new();
        for (i, (gap, disk, size, write)) in items.into_iter().enumerate() {
            events.push(AppEvent::Compute {
                nest: 0,
                first_iter: i as u64 * 10,
                iters: 10,
                secs: gap,
            });
            events.push(AppEvent::Io(IoRequest {
                disk: DiskId(disk),
                start_block: i as u64 * 64,
                size_bytes: size,
                kind: if write { ReqKind::Write } else { ReqKind::Read },
                sequential: false,
                nest: 0,
                iter: i as u64 * 10 + 9,
            }));
        }
        Trace {
            name: "prop".into(),
            pool_size: pool,
            events,
        }
    })
}

fn io_multiset(t: &Trace) -> Vec<(u32, u64, u64)> {
    let mut v: Vec<_> = t
        .requests()
        .map(|r| (r.disk.0, r.start_block, r.size_bytes))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instrumentation preserves the I/O multiset and total compute time,
    /// yields a valid trace, and every inserted call targets an in-pool
    /// disk.
    #[test]
    fn insertion_conserves_the_application(
        trace in trace_strategy(),
        mode_drpm in any::<bool>(),
        spread in 0.0f64..0.3,
        jitter in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let params = ultrastar36z15();
        let mode = if mode_drpm { CmMode::Drpm } else { CmMode::Tpm };
        let out = insert_directives(
            &trace,
            &params,
            &NoiseModel { spread, gap_jitter: jitter, seed },
            mode,
            50e-6,
        );
        prop_assert_eq!(out.trace.validate(), Ok(()));
        prop_assert_eq!(io_multiset(&out.trace), io_multiset(&trace));
        let c0 = trace.stats().compute_secs;
        let c1 = out.trace.stats().compute_secs;
        prop_assert!((c0 - c1).abs() < 1e-6);
        prop_assert_eq!(out.trace.stats().power_calls, out.inserted as u64);
        for e in &out.trace.events {
            if let AppEvent::Power { disk, .. } = e {
                prop_assert!(disk.0 < trace.pool_size);
            }
        }
    }

    /// Per disk, the call stream alternates slow-down / restore: a
    /// restore (SetRpm to max or SpinUp) never appears without a
    /// preceding un-restored slow-down.
    #[test]
    fn calls_alternate_per_disk(trace in trace_strategy(), seed in 0u64..200) {
        let params = ultrastar36z15();
        let max = RpmLadder::new(&params).max_level();
        let out = insert_directives(
            &trace,
            &params,
            &NoiseModel { spread: 0.1, gap_jitter: 0.1, seed },
            CmMode::Drpm,
            50e-6,
        );
        let mut lowered = vec![false; trace.pool_size as usize];
        for e in &out.trace.events {
            if let AppEvent::Power { disk, action } = e {
                let d = disk.0 as usize;
                match action {
                    PowerAction::SetRpm(l) if *l < max => {
                        prop_assert!(!lowered[d], "double slow-down on disk {d}");
                        lowered[d] = true;
                    }
                    PowerAction::SetRpm(_) => {
                        prop_assert!(lowered[d], "restore without slow-down on disk {d}");
                        lowered[d] = false;
                    }
                    _ => {}
                }
            }
        }
    }

    /// The decision list covers every positive-length gap of every disk
    /// that appears in the trace: #decisions == #requests-per-disk sums
    /// (+1 trailing each) minus zero-length gaps.
    #[test]
    fn decisions_cover_disks(trace in trace_strategy()) {
        let params = ultrastar36z15();
        let out = insert_directives(
            &trace,
            &params,
            &NoiseModel::exact(),
            CmMode::Drpm,
            50e-6,
        );
        let mut per_disk = vec![0u64; trace.pool_size as usize];
        for r in trace.requests() {
            per_disk[r.disk.0 as usize] += 1;
        }
        // Each disk contributes at most one gap per request plus the
        // trailing gap — including request-free disks, whose single
        // whole-program gap still gets a decision.
        let upper: u64 = per_disk.iter().map(|&n| n + 1).sum();
        prop_assert!(out.decisions.len() as u64 <= upper);
    }
}
