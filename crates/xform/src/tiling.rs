//! Layout-aware loop tiling (Fig. 12).
//!
//! The Fig. 12 algorithm, for one nest:
//!
//! ```text
//! create tiled loop nest with tile size TS
//! for each array: determine per-tile data size DS(i)
//! for each array: if access pattern != storage pattern: transform layout
//! reshape access patterns
//! for each array: stripe_size(i) <- DS(i)
//! ```
//!
//! We realize it as **strip-mining the outermost loop** into a tile
//! iterator `ii` and an element iterator `i'` (`i = ii·T + i'`), which
//! keeps the iteration space and every subscript affine, plus the two
//! layout moves: arrays whose innermost stride is non-unit but becomes
//! unit after a transpose get their storage order flipped, and every
//! referenced array's stripe size is set to its per-tile footprint so one
//! tile's data collocates on one disk (consecutive tiles then walk the
//! stripe round-robin — the Fig. 10(c) tile-to-disk mapping). While a
//! tile executes, the disks holding other tiles are idle for the whole
//! tile duration, which is what makes TPM viable after this transform.
//!
//! The paper applies tiling "only to the most costly nest (as far as disk
//! energy is concerned)" and leaves multi-nest extension to future work;
//! [`TilingScope::AllNests`] implements that extension (see DESIGN.md §7).

use sdpm_ir::conform::innermost_stride_under;
use sdpm_ir::{AffineExpr, LoopDim, LoopNest, Program};
use sdpm_layout::DiskPool;
use serde::{Deserialize, Serialize};

/// Which nests to tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TilingScope {
    /// Only the nest with the highest disk-access cost (the paper's
    /// implementation).
    CostliestNest,
    /// Every tileable nest (the paper's stated future extension).
    AllNests,
}

/// Tiling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilingConfig {
    /// Scope of the transformation.
    pub scope: TilingScope,
    /// Desired number of tiles per sweep of the outermost loop. `None`
    /// uses the disk pool size, so each disk holds one tile per stripe
    /// period. The actual count is the largest divisor of the loop's trip
    /// count not exceeding the request.
    pub tiles: Option<u32>,
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig {
            scope: TilingScope::CostliestNest,
            tiles: None,
        }
    }
}

/// Result of the tiling transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct TilingOutcome {
    /// The transformed program.
    pub program: Program,
    /// Indices (in the *output* nest list) of nests that were tiled.
    pub tiled_nests: Vec<usize>,
    /// Arrays whose storage order was transposed (layout-aware only).
    pub transposed_arrays: Vec<usize>,
    /// True if anything changed.
    pub changed: bool,
}

/// Disk-cost proxy of a nest: element accesses performed.
fn nest_cost(nest: &LoopNest) -> u64 {
    let refs: u64 = nest.stmts.iter().map(|s| s.refs.len() as u64).sum();
    nest.iter_count().saturating_mul(refs)
}

/// Largest tile count `t <= requested` that divides `n` with `t >= 2`
/// and at least two trips per tile (a one-trip "tile" is the original
/// iteration and restructures nothing).
fn pick_tile_count(n: u64, requested: u32) -> Option<u64> {
    let req = u64::from(requested).min(n);
    (2..=req).rev().find(|t| n.is_multiple_of(*t) && n / t >= 2)
}

/// Strip-mines the outermost loop of `nest` into `tiles` tiles, rewriting
/// every subscript. Returns `None` if the nest cannot be tiled (depth 0,
/// too few trips, or no usable tile count).
fn strip_mine(nest: &LoopNest, tiles: u64) -> Option<LoopNest> {
    let outer = *nest.loops.first()?;
    if outer.count < 2 || tiles < 2 || outer.count % tiles != 0 {
        return None;
    }
    let tile_trips = outer.count / tiles;
    let old_depth = nest.depth();
    let new_depth = old_depth + 1;
    // i_old = lower + step*(ii*T + i') ; remaining loops shift right by 1.
    let mut subst: Vec<AffineExpr> = Vec::with_capacity(old_depth);
    {
        let mut coeffs = vec![0i64; new_depth];
        coeffs[0] = outer.step * tile_trips as i64;
        coeffs[1] = outer.step;
        subst.push(AffineExpr {
            coeffs,
            constant: outer.lower,
        });
    }
    for d in 1..old_depth {
        subst.push(AffineExpr::var(new_depth, d + 1));
    }
    let mut loops = Vec::with_capacity(new_depth);
    loops.push(LoopDim::simple(tiles)); // ii: tile iterator
    loops.push(LoopDim::simple(tile_trips)); // i': element iterator
                                             // Inner loops keep their own lower/step; the substitution maps their
                                             // variable straight through, so express them as raw trips with the
                                             // original lower/step preserved in the loop descriptor.
    loops.extend(nest.loops.iter().skip(1).copied());
    let stmts = nest
        .stmts
        .iter()
        .map(|s| {
            let mut s = s.clone();
            for r in &mut s.refs {
                for sub in &mut r.subscripts {
                    *sub = sub.substituted(&subst);
                }
            }
            s
        })
        .collect();
    Some(LoopNest {
        label: format!("{}.t", nest.label),
        loops,
        stmts,
        cycles_per_iter: nest.cycles_per_iter,
    })
}

/// Applies the Fig. 12 transformation.
#[must_use]
pub fn loop_tiling(
    program: &Program,
    pool: DiskPool,
    layout_aware: bool,
    config: &TilingConfig,
) -> TilingOutcome {
    let requested_tiles = config.tiles.unwrap_or(pool.count());
    let targets: Vec<usize> = match config.scope {
        TilingScope::CostliestNest => {
            match program
                .nests
                .iter()
                .enumerate()
                .max_by_key(|(_, n)| nest_cost(n))
            {
                Some((i, _)) => vec![i],
                None => vec![],
            }
        }
        TilingScope::AllNests => (0..program.nests.len()).collect(),
    };

    let mut out = program.clone();
    let mut tiled_nests = Vec::new();
    let mut transposed = Vec::new();
    let mut changed = false;

    for &ni in &targets {
        let nest = &program.nests[ni];
        let Some(tiles) = nest
            .loops
            .first()
            .and_then(|l| pick_tile_count(l.count, requested_tiles))
        else {
            continue;
        };
        if layout_aware {
            // Layout transformation: transpose arrays whose accesses in
            // this nest do not conform but would after a transpose.
            for stmt in &nest.stmts {
                for r in &stmt.refs {
                    let file = &out.arrays[r.array];
                    let cur = innermost_stride_under(nest, r, file, file.order).abs();
                    let flip = innermost_stride_under(nest, r, file, file.order.transposed()).abs();
                    if cur != 1 && flip == 1 && !transposed.contains(&r.array) {
                        out.arrays[r.array].order = file.order.transposed();
                        transposed.push(r.array);
                        changed = true;
                    }
                }
            }
            // Stripe size per array = per-tile data footprint. With the
            // outermost loop cut into `tiles` tiles, an array swept once
            // per outer iteration contributes total_bytes / tiles per
            // tile.
            let seen: Vec<usize> = nest.arrays();
            for a in seen {
                let file = &mut out.arrays[a];
                let footprint = (file.total_bytes() / tiles).max(file.element_bytes);
                if file.striping.stripe_bytes != footprint {
                    file.striping.stripe_bytes = footprint;
                    changed = true;
                }
            }
        }
        if let Some(tiled) = strip_mine(nest, tiles) {
            out.nests[ni] = tiled;
            tiled_nests.push(ni);
            changed = true;
        }
    }

    TilingOutcome {
        program: out,
        tiled_nests,
        transposed_arrays: transposed,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_ir::{ArrayRef, Statement};
    use sdpm_layout::{ArrayFile, DiskId, StorageOrder, Striping};

    fn file_2d(name: &str, n: u64, order: StorageOrder) -> ArrayFile {
        ArrayFile {
            name: name.into(),
            dims: vec![n, n],
            element_bytes: 8,
            order,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 4,
                stripe_bytes: 64 * 1024,
            },
            base_block: 0,
        }
    }

    /// Fig. 10's shape: U1[i][j] (conforming) and U2[j][i]
    /// (non-conforming on a row-major layout).
    fn figure10_program(n: u64) -> Program {
        let nest = LoopNest {
            label: "n1".into(),
            loops: vec![LoopDim::simple(n), LoopDim::simple(n)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![
                    ArrayRef::read(0, vec![AffineExpr::var(2, 0), AffineExpr::var(2, 1)]),
                    ArrayRef::read(1, vec![AffineExpr::var(2, 1), AffineExpr::var(2, 0)]),
                ],
            }],
            cycles_per_iter: 50.0,
        };
        Program {
            name: "fig10".into(),
            arrays: vec![
                file_2d("U1", n, StorageOrder::RowMajor),
                file_2d("U2", n, StorageOrder::RowMajor),
            ],
            nests: vec![nest],
            clock_hz: Program::PAPER_CLOCK_HZ,
        }
    }

    #[test]
    fn strip_mine_preserves_accessed_elements() {
        let p = figure10_program(16);
        let tiled = strip_mine(&p.nests[0], 4).unwrap();
        assert_eq!(tiled.iter_count(), p.nests[0].iter_count());
        assert_eq!(tiled.depth(), 3);
        // Collect (ref0 elements) from both versions; sets must match and
        // the tiled order must group outer-i blocks.
        let collect = |nest: &LoopNest| {
            let mut v = Vec::new();
            sdpm_ir::walk_nest(nest, |_, ivars| {
                v.push(nest.stmts[0].refs[0].element_at(ivars));
            });
            v
        };
        let orig = collect(&p.nests[0]);
        let tiled_elems = collect(&tiled);
        let mut a = orig.clone();
        let mut b = tiled_elems.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "tiling permutes but preserves the access set");
        // With tiles of 4 rows: first 64 iterations stay within rows 0..4.
        assert!(tiled_elems[..64].iter().all(|e| e[0] < 4));
        assert!(tiled_elems[64..128].iter().all(|e| (4..8).contains(&e[0])));
    }

    #[test]
    fn layout_aware_tiling_transposes_nonconforming_array() {
        let p = figure10_program(64);
        let out = loop_tiling(&p, DiskPool::new(4), true, &TilingConfig::default());
        assert!(out.changed);
        // U2[j][i] is column-walked: transposed. U1 conforms: untouched.
        assert_eq!(out.transposed_arrays, vec![1]);
        assert_eq!(out.program.arrays[1].order, StorageOrder::ColMajor);
        assert_eq!(out.program.arrays[0].order, StorageOrder::RowMajor);
        out.program.validate(DiskPool::new(4)).unwrap();
    }

    #[test]
    fn layout_aware_tiling_sets_stripe_to_tile_footprint() {
        let p = figure10_program(64);
        let out = loop_tiling(&p, DiskPool::new(4), true, &TilingConfig::default());
        // 64x64 x 8 B = 32 KiB per array; 4 tiles -> 8 KiB stripes.
        for a in &out.program.arrays {
            assert_eq!(a.striping.stripe_bytes, 8 * 1024);
        }
    }

    #[test]
    fn layout_oblivious_tiling_keeps_layout() {
        let p = figure10_program(64);
        let out = loop_tiling(&p, DiskPool::new(4), false, &TilingConfig::default());
        assert!(out.changed);
        assert!(out.transposed_arrays.is_empty());
        for a in &out.program.arrays {
            assert_eq!(a.striping.stripe_bytes, 64 * 1024);
            assert_eq!(a.order, StorageOrder::RowMajor);
        }
    }

    #[test]
    fn conforming_program_gets_no_layout_change() {
        // Both refs conforming: tiling still strip-mines, but no
        // transpose happens (galgel's situation for the layout part).
        let mut p = figure10_program(64);
        p.nests[0].stmts[0].refs[1] =
            ArrayRef::read(1, vec![AffineExpr::var(2, 0), AffineExpr::var(2, 1)]);
        let out = loop_tiling(&p, DiskPool::new(4), true, &TilingConfig::default());
        assert!(out.transposed_arrays.is_empty());
    }

    #[test]
    fn costliest_scope_picks_the_biggest_nest() {
        let mut p = figure10_program(64);
        let mut small = p.nests[0].clone();
        small.label = "small".into();
        small.loops = vec![LoopDim::simple(4), LoopDim::simple(4)];
        p.nests.insert(0, small);
        let out = loop_tiling(&p, DiskPool::new(4), false, &TilingConfig::default());
        assert_eq!(out.tiled_nests, vec![1]);
        assert_eq!(out.program.nests[0].label, "small");
        assert!(out.program.nests[1].label.ends_with(".t"));
    }

    #[test]
    fn all_nests_scope_tiles_everything_tileable() {
        let mut p = figure10_program(64);
        p.nests.push(p.nests[0].clone());
        let out = loop_tiling(
            &p,
            DiskPool::new(4),
            false,
            &TilingConfig {
                scope: TilingScope::AllNests,
                tiles: None,
            },
        );
        assert_eq!(out.tiled_nests, vec![0, 1]);
    }

    #[test]
    fn tile_count_falls_back_to_a_divisor() {
        // 30 trips, 4 disks requested: 4 does not divide 30, falls to 3.
        assert_eq!(pick_tile_count(30, 4), Some(3));
        assert_eq!(pick_tile_count(64, 4), Some(4));
        assert_eq!(pick_tile_count(7, 4), None, "prime trip count: no tiling");
        assert_eq!(pick_tile_count(8, 1), None);
    }

    #[test]
    fn untileable_program_passes_through() {
        let mut p = figure10_program(64);
        p.nests[0].loops[0] = LoopDim::simple(7); // prime
        p.nests[0].loops[1] = LoopDim::simple(7);
        // Fix subscripts' bounds by shrinking arrays.
        p.arrays[0].dims = vec![7, 7];
        p.arrays[1].dims = vec![7, 7];
        let out = loop_tiling(&p, DiskPool::new(4), false, &TilingConfig::default());
        assert!(!out.changed);
        assert_eq!(out.program, p);
    }

    #[test]
    fn strided_outer_loop_strip_mines_correctly() {
        let mut p = figure10_program(64);
        // i walks 0, 2, 4, ... 30 (16 trips); j walks 0..64.
        p.nests[0].loops[0] = LoopDim {
            lower: 0,
            count: 16,
            step: 2,
        };
        let tiled = strip_mine(&p.nests[0], 4).unwrap();
        let mut rows = Vec::new();
        sdpm_ir::walk_nest(&tiled, |_, ivars| {
            rows.push(tiled.stmts[0].refs[0].element_at(ivars)[0]);
        });
        let max = *rows.iter().max().unwrap();
        let min = *rows.iter().min().unwrap();
        assert_eq!((min, max), (0, 30));
        // First tile covers rows 0..8 (4 trips of stride 2).
        assert!(rows[..4 * 64].iter().all(|&r| r < 8));
    }
}
