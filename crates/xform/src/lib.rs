//! Disk-layout-aware code transformations (Section 6 of the paper).
//!
//! Two loop restructurings increase per-disk inter-access times so that
//! power management (reactive *or* proactive) finds exploitable idleness:
//!
//! * [`fission`] — loop distribution with array grouping and proportional
//!   disk allocation (the Fig. 11 algorithm). Statements that access
//!   disjoint array sets move to separate loops; arrays coupled through a
//!   common statement form **array groups**; each group gets a disjoint
//!   disk set sized by its data volume. While one group's loop runs, the
//!   other groups' disks see no traffic at all.
//! * [`tiling`] — layout-aware loop tiling (the Fig. 12 algorithm). The
//!   costliest nest is restructured into tile/element iterators; arrays
//!   whose access pattern does not conform to their storage pattern are
//!   layout-transposed; and each array's stripe size is set to its
//!   per-tile data footprint so a tile's working set collocates on one
//!   disk, leaving the others idle for the tile's duration.
//!
//! Both come in layout-*oblivious* variants (`LF`, `TL`: restructure the
//! code but keep the original striping) used by the paper's Fig. 13
//! ablation to show that the code transformation alone is useless — the
//! disk layout has to move with it. [`pdc`] adds the cited reactive
//! data-placement baseline.
//!
//! # Example
//!
//! ```
//! use sdpm_layout::DiskPool;
//! use sdpm_workloads::synth::out_of_core_stencil;
//! use sdpm_xform::loop_fission;
//!
//! // Two grids, alternately swept: two array groups.
//! let program = out_of_core_stencil(4, 2, 1.0);
//! let out = loop_fission(&program, DiskPool::new(8), true);
//! assert!(out.fissioned_any);
//! assert_eq!(out.groups.len(), 2);
//! // Each group gets half of the 8-disk pool, disjointly.
//! assert_eq!(out.groups[0].disks.len(), 4);
//! assert!(out.groups[0].disks.is_disjoint(out.groups[1].disks));
//! ```

#![forbid(unsafe_code)]
pub mod fission;
pub mod pdc;
pub mod tiling;

pub use fission::{array_groups, loop_fission, ArrayGroup, FissionOutcome};
pub use pdc::{access_volume, pdc_layout, PdcOutcome, PdcPlacement};
pub use tiling::{loop_tiling, TilingConfig, TilingOutcome, TilingScope};

use sdpm_ir::Program;
use sdpm_layout::DiskPool;

/// The four transformation versions evaluated in Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Loop fission, original disk layout.
    Lf,
    /// Loop tiling, original disk layout.
    Tl,
    /// Layout-aware loop fission (Fig. 11).
    LfDl,
    /// Layout-aware loop tiling (Fig. 12).
    TlDl,
}

impl Transform {
    /// The paper's version label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Transform::Lf => "LF",
            Transform::Tl => "TL",
            Transform::LfDl => "LF+DL",
            Transform::TlDl => "TL+DL",
        }
    }

    /// Applies the transformation to `program`, returning the transformed
    /// program (identical to the input when the transformation finds no
    /// opportunity, e.g. no fissionable nest).
    #[must_use]
    pub fn apply(&self, program: &Program, pool: DiskPool) -> Program {
        match self {
            Transform::Lf => loop_fission(program, pool, false).program,
            Transform::LfDl => loop_fission(program, pool, true).program,
            Transform::Tl => loop_tiling(program, pool, false, &TilingConfig::default()).program,
            Transform::TlDl => loop_tiling(program, pool, true, &TilingConfig::default()).program,
        }
    }

    /// All four versions, in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Transform; 4] {
        [
            Transform::Lf,
            Transform::Tl,
            Transform::LfDl,
            Transform::TlDl,
        ]
    }
}
