//! Popular Data Concentration (PDC) baseline.
//!
//! The paper cites Pinheiro & Bianchini's PDC [16] as the third family of
//! prior disk power management: instead of changing disk states, migrate
//! **popular data onto few disks** so the remaining disks see long idle
//! stretches and can power down. We implement the layout-level essence:
//! rank arrays by their access volume, then pack them disk by disk in
//! popularity order (popular arrays share the first disks; cold arrays
//! land on the last), each array stored unstriped on its assigned disk.
//!
//! PDC is *data placement*, not code transformation — it needs no source
//! access, which is why the paper classes it with the reactive schemes.
//! Its cost is the serialization of hot data onto few spindles, which
//! the open-loop replay (`sdpm_sim::replay_open_loop`) exposes as
//! response-time degradation.

use sdpm_ir::Program;
use sdpm_layout::{DiskId, DiskPool, Striping};
use serde::{Deserialize, Serialize};

/// Outcome of the PDC placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PdcOutcome {
    /// The re-laid-out program.
    pub program: Program,
    /// Per-array: `(array, assigned disk, accessed bytes)` in placement
    /// order (most popular first).
    pub placement: Vec<PdcPlacement>,
}

/// One array's PDC placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdcPlacement {
    /// Array id in the program's symbol table.
    pub array: usize,
    /// Disk the whole array was concentrated onto.
    pub disk: DiskId,
    /// Total bytes the program's nests read/write in this array (the
    /// popularity metric).
    pub accessed_bytes: u64,
}

/// Bytes each array is accessed for across the whole program (statically:
/// per-reference iteration counts times the element size).
#[must_use]
pub fn access_volume(program: &Program) -> Vec<u64> {
    let mut vol = vec![0u64; program.arrays.len()];
    for nest in &program.nests {
        let iters = nest.iter_count();
        for stmt in &nest.stmts {
            for r in &stmt.refs {
                vol[r.array] =
                    vol[r.array].saturating_add(iters * program.arrays[r.array].element_bytes);
            }
        }
    }
    vol
}

/// Applies PDC: arrays sorted by descending access volume are packed onto
/// disks in order, filling each disk up to roughly `1/pool` of the total
/// footprint before moving to the next. Every array ends up unstriped
/// (`stripe factor 1`) on one disk, stripe size equal to its own length.
#[must_use]
pub fn pdc_layout(program: &Program, pool: DiskPool) -> PdcOutcome {
    let vol = access_volume(program);
    let mut order: Vec<usize> = (0..program.arrays.len()).collect();
    order.sort_by_key(|&a| std::cmp::Reverse(vol[a]));

    let total_bytes: u64 = program.arrays.iter().map(|a| a.total_bytes()).sum();
    let per_disk_budget = total_bytes.div_ceil(u64::from(pool.count())).max(1);

    let mut out = program.clone();
    let mut placement = Vec::with_capacity(order.len());
    let mut disk = 0u32;
    let mut filled = 0u64;
    for a in order {
        let bytes = program.arrays[a].total_bytes();
        if filled > 0 && filled + bytes > per_disk_budget && disk + 1 < pool.count() {
            disk += 1;
            filled = 0;
        }
        filled += bytes;
        out.arrays[a].striping = Striping {
            start_disk: DiskId(disk),
            stripe_factor: 1,
            stripe_bytes: bytes.max(1),
        };
        placement.push(PdcPlacement {
            array: a,
            disk: DiskId(disk),
            accessed_bytes: vol[a],
        });
    }
    PdcOutcome {
        program: out,
        placement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_ir::{AffineExpr, ArrayRef, LoopDim, LoopNest, Statement};
    use sdpm_layout::{ArrayFile, StorageOrder};

    fn file(name: &str, elems: u64) -> ArrayFile {
        ArrayFile {
            name: name.into(),
            dims: vec![elems],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping::default_paper(),
            base_block: 0,
        }
    }

    /// Three equal arrays; `hot` is scanned 4x, `warm` 2x, `cold` once.
    fn program() -> Program {
        let scan = |a: usize, sweeps: u64| LoopNest {
            label: format!("scan{a}x{sweeps}"),
            loops: vec![LoopDim::simple(1024 * sweeps)],
            stmts: vec![Statement {
                label: "S".into(),
                refs: vec![ArrayRef::read(
                    a,
                    // Wrap within the array by scaling: sweeps * 1024
                    // iterations over a 1024-element array via i % n is
                    // not affine, so sweep via separate nests instead.
                    vec![AffineExpr::var(1, 0)],
                )],
            }],
            cycles_per_iter: 10.0,
        };
        // Use distinct nests per sweep to stay affine.
        let mut nests = Vec::new();
        for _ in 0..4 {
            nests.push(LoopNest {
                loops: vec![LoopDim::simple(1024)],
                ..scan(0, 1)
            });
        }
        for _ in 0..2 {
            nests.push(LoopNest {
                loops: vec![LoopDim::simple(1024)],
                ..scan(1, 1)
            });
        }
        nests.push(LoopNest {
            loops: vec![LoopDim::simple(1024)],
            ..scan(2, 1)
        });
        // Fix array ids per nest group.
        for (i, n) in nests.iter_mut().enumerate() {
            let a = if i < 4 {
                0
            } else if i < 6 {
                1
            } else {
                2
            };
            n.stmts[0].refs[0].array = a;
        }
        Program {
            name: "pdc".into(),
            arrays: vec![file("hot", 4096), file("warm", 4096), file("cold", 4096)],
            nests,
            clock_hz: 1e9,
        }
    }

    #[test]
    fn access_volume_ranks_by_sweeps() {
        let p = program();
        let v = access_volume(&p);
        assert!(v[0] > v[1] && v[1] > v[2]);
        assert_eq!(v[0], 4 * 1024 * 8);
    }

    #[test]
    fn pdc_places_popular_arrays_first_and_unstripes() {
        let p = program();
        let pool = DiskPool::new(8);
        let out = pdc_layout(&p, pool);
        out.program.validate(pool).unwrap();
        assert_eq!(out.placement[0].array, 0, "hot array placed first");
        for a in &out.program.arrays {
            assert_eq!(a.striping.stripe_factor, 1);
        }
        // Hot array on the first disk.
        assert_eq!(out.program.arrays[0].striping.start_disk, DiskId(0));
    }

    #[test]
    fn pdc_spreads_by_footprint_budget() {
        let p = program();
        // Pool of 3: each disk's budget ~= one array.
        let out = pdc_layout(&p, DiskPool::new(3));
        let disks: Vec<u32> = out.placement.iter().map(|pl| pl.disk.0).collect();
        assert_eq!(disks, vec![0, 1, 2], "one array per disk at this budget");
    }

    #[test]
    fn pdc_on_single_disk_pool_stacks_everything() {
        let p = program();
        let out = pdc_layout(&p, DiskPool::new(1));
        assert!(out
            .program
            .arrays
            .iter()
            .all(|a| a.striping.start_disk == DiskId(0)));
    }
}
