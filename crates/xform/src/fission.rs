//! Loop fission with array grouping and disk allocation (Fig. 11).
//!
//! The algorithm, as the paper sketches it:
//!
//! ```text
//! AG <- {}                              // array groups
//! for each loop nest:
//!   for each statement:
//!     B <- arrays accessed by the statement
//!     if B is disjoint from every set in AG: add B as a new set
//!     else: union B into the overlapping set(s)
//! generate fissioned loops
//! allocate disks to array groups by total data size
//! ```
//!
//! Fissioned loops are the topologically-ordered dependence SCCs of each
//! nest's body (legality per [`sdpm_ir::depend`]); the disk allocation is
//! the proportional contiguous carve of [`sdpm_layout::alloc`].

use sdpm_ir::{LoopNest, Program};
use sdpm_layout::{allocate_proportional, DiskPool, DiskSet, Striping};
use serde::{Deserialize, Serialize};

/// One array group and the disks allocated to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayGroup {
    /// Member arrays (indices into the program's symbol table).
    pub arrays: Vec<usize>,
    /// Total bytes of the group's arrays.
    pub bytes: u64,
    /// Disks allocated to the group (empty in the layout-oblivious
    /// variant).
    pub disks: DiskSet,
}

/// Result of the fission transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct FissionOutcome {
    /// The transformed program (equal to the input if nothing fissioned
    /// and the layout did not change).
    pub program: Program,
    /// Array groups in formation order.
    pub groups: Vec<ArrayGroup>,
    /// True if at least one nest was actually distributed.
    pub fissioned_any: bool,
    /// Provenance: `nest_origin[k]` is the index of the source-program
    /// nest that output nest `k` was carved from (monotone non-decreasing;
    /// used by `sdpm-verify` to re-check legality per source nest).
    pub nest_origin: Vec<usize>,
}

/// Union-find over array ids.
struct ArrayUnionFind {
    parent: Vec<usize>,
}

impl ArrayUnionFind {
    fn new(n: usize) -> Self {
        ArrayUnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins, for deterministic group order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Computes the Fig. 11 array groups of `program`: arrays accessed by a
/// common statement are coupled (transitively). Returns groups in order of
/// their smallest member array, each listing member arrays sorted.
#[must_use]
pub fn array_groups(program: &Program) -> Vec<Vec<usize>> {
    let mut uf = ArrayUnionFind::new(program.arrays.len());
    let mut touched = vec![false; program.arrays.len()];
    for nest in &program.nests {
        for stmt in &nest.stmts {
            let arrays = stmt.arrays();
            for &a in &arrays {
                touched[a] = true;
            }
            for w in arrays.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
    }
    let n = program.arrays.len();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_to_group: Vec<Option<usize>> = vec![None; n];
    for (a, &is_touched) in touched.iter().enumerate() {
        if !is_touched {
            continue; // unaccessed arrays keep their layout, ungrouped
        }
        let r = uf.find(a);
        match root_to_group[r] {
            Some(g) => groups[g].push(a),
            None => {
                root_to_group[r] = Some(groups.len());
                groups.push(vec![a]);
            }
        }
    }
    groups
}

/// Distributes one nest along array-group boundaries: statements whose
/// arrays belong to the same group stay in one loop, statements of
/// different groups split (this is the Fig. 9(b) shape — one fissioned
/// loop per array group touched by the nest).
///
/// Legality: statements in different array groups share no array at all
/// (grouping is the transitive closure of array sharing), so no dependence
/// crosses the split; statements within a group keep their source order,
/// so intra-group dependences — the ones [`fission_groups`] would flag —
/// are untouched. The per-iteration cycle budget splits proportionally to
/// statement count.
fn distribute_nest(nest: &LoopNest, group_of_array: &[usize]) -> Vec<LoopNest> {
    // Partition statements by their arrays' group, keeping first-seen
    // group order.
    let mut parts: Vec<(usize, Vec<usize>)> = Vec::new();
    for (si, stmt) in nest.stmts.iter().enumerate() {
        let g = stmt
            .arrays()
            .first()
            .map(|&a| group_of_array[a])
            .unwrap_or(usize::MAX);
        debug_assert!(
            stmt.arrays().iter().all(|&a| group_of_array[a] == g),
            "a statement's arrays are coupled and must share one group"
        );
        match parts.iter_mut().find(|(pg, _)| *pg == g) {
            Some((_, v)) => v.push(si),
            None => parts.push((g, vec![si])),
        }
    }
    if parts.len() <= 1 {
        return vec![nest.clone()];
    }
    let total_stmts = nest.stmts.len() as f64;
    parts
        .into_iter()
        .enumerate()
        .map(|(gi, (_, stmt_ids))| LoopNest {
            label: format!("{}.f{}", nest.label, gi),
            loops: nest.loops.clone(),
            stmts: stmt_ids.iter().map(|&s| nest.stmts[s].clone()).collect(),
            cycles_per_iter: nest.cycles_per_iter * stmt_ids.len() as f64 / total_stmts,
        })
        .collect()
}

/// Applies the Fig. 11 transformation. With `layout_aware` (the DL part),
/// arrays are re-striped over their group's allocated disks; without it
/// (the paper's plain `LF` version) only the loops change.
#[must_use]
pub fn loop_fission(program: &Program, pool: DiskPool, layout_aware: bool) -> FissionOutcome {
    // 1. Form array groups (they also drive the loop distribution).
    let raw_groups = array_groups(program);
    let mut group_of_array = vec![usize::MAX; program.arrays.len()];
    for (gi, g) in raw_groups.iter().enumerate() {
        for &a in g {
            group_of_array[a] = gi;
        }
    }

    // 2. Generate fissioned loops.
    let mut nests = Vec::new();
    let mut nest_origin = Vec::new();
    let mut fissioned_any = false;
    for (ni, nest) in program.nests.iter().enumerate() {
        let parts = distribute_nest(nest, &group_of_array);
        fissioned_any |= parts.len() > 1;
        nest_origin.extend(std::iter::repeat_n(ni, parts.len()));
        nests.extend(parts);
    }
    let sizes: Vec<u64> = raw_groups
        .iter()
        .map(|g| g.iter().map(|&a| program.arrays[a].total_bytes()).sum())
        .collect();

    // 3. Allocate disks proportionally (layout-aware only, and only when
    //    the pool can give every group a disk).
    let mut arrays = program.arrays.clone();
    let allocations: Vec<DiskSet> = if layout_aware && !raw_groups.is_empty() {
        match allocate_proportional(pool, &sizes) {
            Ok(sets) => {
                for (g, set) in raw_groups.iter().zip(&sets) {
                    let members: Vec<_> = set.iter().collect();
                    let start = members[0];
                    let factor = members.len() as u32;
                    for &a in g {
                        arrays[a].striping = Striping {
                            start_disk: start,
                            stripe_factor: factor,
                            stripe_bytes: arrays[a].striping.stripe_bytes,
                        };
                    }
                }
                sets
            }
            Err(_) => vec![DiskSet::empty(); raw_groups.len()],
        }
    } else {
        vec![DiskSet::empty(); raw_groups.len()]
    };

    let groups = raw_groups
        .into_iter()
        .zip(sizes)
        .zip(allocations)
        .map(|((arrays_in, bytes), disks)| ArrayGroup {
            arrays: arrays_in,
            bytes,
            disks,
        })
        .collect();

    let program = Program {
        name: program.name.clone(),
        arrays,
        nests,
        clock_hz: program.clock_hz,
    };
    FissionOutcome {
        program,
        groups,
        fissioned_any,
        nest_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdpm_ir::{AffineExpr, ArrayRef, LoopDim, LoopNest, Statement};
    use sdpm_layout::{ArrayFile, DiskId, StorageOrder};

    fn file(name: &str, elems: u64) -> ArrayFile {
        ArrayFile {
            name: name.into(),
            dims: vec![elems],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 8,
                stripe_bytes: 64 * 1024,
            },
            base_block: 0,
        }
    }

    fn i1() -> AffineExpr {
        AffineExpr::var(1, 0)
    }

    /// The Fig. 9 program: three nests over ten equal arrays U1..U10.
    /// Nest 1: U1=U2; U5=U1.  Nest 2: U3=U4; U8=U3.  Nest 3: U6=U7; U9=U10.
    fn figure9_program(elems: u64) -> Program {
        let stmt = |w: usize, r: usize| Statement {
            label: format!("U{}=U{}", w + 1, r + 1),
            refs: vec![
                ArrayRef::write(w, vec![i1()]),
                ArrayRef::read(r, vec![i1()]),
            ],
        };
        let nest = |label: &str, stmts: Vec<Statement>| LoopNest {
            label: label.into(),
            loops: vec![LoopDim::simple(elems)],
            stmts,
            cycles_per_iter: 100.0,
        };
        Program {
            name: "fig9".into(),
            arrays: (0..10)
                .map(|k| file(&format!("U{}", k + 1), elems))
                .collect(),
            nests: vec![
                nest("n1", vec![stmt(0, 1), stmt(4, 0)]),
                nest("n2", vec![stmt(2, 3), stmt(7, 2)]),
                nest("n3", vec![stmt(5, 6), stmt(8, 9)]),
            ],
            clock_hz: Program::PAPER_CLOCK_HZ,
        }
    }

    #[test]
    fn figure9_array_groups_match_paper() {
        let p = figure9_program(1024);
        let groups = array_groups(&p);
        // Paper: {U1,U2,U5}, {U3,U4,U8}, {U6,U7}, {U9,U10}.
        assert_eq!(
            groups,
            vec![vec![0, 1, 4], vec![2, 3, 7], vec![5, 6], vec![8, 9]]
        );
    }

    #[test]
    fn figure9_fission_yields_four_loops_like_the_paper() {
        let p = figure9_program(1024);
        let out = loop_fission(&p, DiskPool::new(10), false);
        assert!(out.fissioned_any);
        // Nests 1 and 2 are group-pure ({U1,U2,U5} and {U3,U4,U8}) and
        // stay whole; nest 3 spans two groups and splits — four loops in
        // total, exactly Fig. 9(b).
        assert_eq!(out.program.nests.len(), 4);
        assert_eq!(out.program.nests[0].stmts.len(), 2);
        assert_eq!(out.program.nests[2].stmts.len(), 1);
        assert_eq!(out.program.nests[3].stmts.len(), 1);
    }

    #[test]
    fn layout_aware_fission_allocates_disjoint_contiguous_disks() {
        let p = figure9_program(1024);
        let out = loop_fission(&p, DiskPool::new(10), true);
        // Groups sized 3:3:2:2 over 10 disks -> 3,3,2,2 (the paper's
        // Fig. 9(c) allocation).
        let lens: Vec<u32> = out.groups.iter().map(|g| g.disks.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        let mut union = DiskSet::empty();
        for g in &out.groups {
            assert!(union.is_disjoint(g.disks));
            union = union.union(g.disks);
        }
        // Re-striping followed the allocation.
        let a0 = &out.program.arrays[0];
        assert_eq!(a0.striping.stripe_factor, 3);
        assert_eq!(a0.striping.start_disk, DiskId(0));
        let a8 = &out.program.arrays[8];
        assert_eq!(a8.striping.stripe_factor, 2);
        assert_eq!(a8.striping.start_disk, DiskId(8));
        out.program.validate(DiskPool::new(10)).unwrap();
    }

    #[test]
    fn layout_oblivious_fission_keeps_striping() {
        let p = figure9_program(1024);
        let out = loop_fission(&p, DiskPool::new(10), false);
        for a in &out.program.arrays {
            assert_eq!(a.striping.stripe_factor, 8);
            assert_eq!(a.striping.start_disk, DiskId(0));
        }
    }

    #[test]
    fn fission_preserves_total_cycles() {
        let p = figure9_program(1024);
        let out = loop_fission(&p, DiskPool::new(10), true);
        let before: f64 = p.nests.iter().map(LoopNest::total_cycles).sum();
        let after: f64 = out.program.nests.iter().map(LoopNest::total_cycles).sum();
        assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn non_fissionable_program_passes_through() {
        // One nest whose two statements couple cross-iteration.
        let mut p = figure9_program(64);
        p.nests = vec![LoopNest {
            label: "n".into(),
            loops: vec![LoopDim {
                lower: 0,
                count: 63,
                step: 1,
            }],
            stmts: vec![
                Statement {
                    label: "S1".into(),
                    refs: vec![
                        ArrayRef::write(0, vec![i1()]),
                        ArrayRef::read(1, vec![i1().shifted(1)]),
                    ],
                },
                Statement {
                    label: "S2".into(),
                    refs: vec![
                        ArrayRef::write(1, vec![i1()]),
                        ArrayRef::read(0, vec![i1().shifted(1)]),
                    ],
                },
            ],
            cycles_per_iter: 10.0,
        }];
        let out = loop_fission(&p, DiskPool::new(8), false);
        assert!(!out.fissioned_any);
        assert_eq!(out.program.nests.len(), 1);
        assert_eq!(out.program.nests[0].stmts.len(), 2);
    }

    #[test]
    fn dl_with_more_groups_than_disks_degrades_gracefully() {
        let p = figure9_program(1024);
        // Only 2 disks for 4 groups: allocation impossible; striping kept.
        let out = loop_fission(&p, DiskPool::new(2), true);
        assert!(out.groups.iter().all(|g| g.disks.is_empty()));
    }

    #[test]
    fn unaccessed_arrays_stay_out_of_groups() {
        let mut p = figure9_program(256);
        p.arrays.push(file("U11", 256));
        let groups = array_groups(&p);
        assert!(groups.iter().all(|g| !g.contains(&10)));
    }
}
