//! Property tests for the transformations: legality and conservation
//! laws over randomized programs.

use proptest::prelude::*;
use sdpm_ir::{walk_nest, AffineExpr, ArrayRef, LoopDim, LoopNest, Program, Statement};
use sdpm_layout::{ArrayFile, DiskId, DiskPool, DiskSet, StorageOrder, Striping};
use sdpm_xform::{loop_fission, loop_tiling, pdc_layout, TilingConfig, TilingScope};

/// A random multi-nest scan program over `n_arrays` 1-D arrays.
fn program_strategy() -> impl Strategy<Value = Program> {
    (2usize..6, 1usize..5, 64u64..512).prop_flat_map(|(n_arrays, n_nests, elems)| {
        proptest::collection::vec(
            proptest::collection::vec(0usize..n_arrays, 1..4),
            n_nests..=n_nests,
        )
        .prop_map(move |nest_arrays| {
            let arrays: Vec<ArrayFile> = (0..n_arrays)
                .map(|i| ArrayFile {
                    name: format!("A{i}"),
                    dims: vec![elems],
                    element_bytes: 8,
                    order: StorageOrder::RowMajor,
                    striping: Striping {
                        start_disk: DiskId(0),
                        stripe_factor: 8,
                        stripe_bytes: 256,
                    },
                    base_block: (i as u64) * 1000,
                })
                .collect();
            let nests: Vec<LoopNest> = nest_arrays
                .into_iter()
                .enumerate()
                .map(|(ni, mut ids)| {
                    ids.sort_unstable();
                    ids.dedup();
                    LoopNest {
                        label: format!("n{ni}"),
                        loops: vec![LoopDim::simple(elems)],
                        stmts: vec![Statement {
                            label: format!("n{ni}.S"),
                            refs: ids
                                .iter()
                                .map(|&a| ArrayRef::read(a, vec![AffineExpr::var(1, 0)]))
                                .collect(),
                        }],
                        cycles_per_iter: 10.0,
                    }
                })
                .collect();
            Program {
                name: "prop".into(),
                arrays,
                nests,
                clock_hz: 1e9,
            }
        })
    })
}

/// Multiset of accessed `(array, element)` pairs over a whole program.
fn access_multiset(p: &Program) -> Vec<(usize, i64)> {
    let mut out = Vec::new();
    for nest in &p.nests {
        walk_nest(nest, |_, ivars| {
            for stmt in &nest.stmts {
                for r in &stmt.refs {
                    out.push((r.array, r.subscripts[0].eval(ivars)));
                }
            }
        });
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fission preserves the access multiset, total cycles, and produces
    /// a valid program; layout-aware fission allocates disjoint disks.
    #[test]
    fn fission_preserves_semantics(p in program_strategy()) {
        let pool = DiskPool::new(8);
        p.validate(pool).unwrap();
        for layout_aware in [false, true] {
            let out = loop_fission(&p, pool, layout_aware);
            out.program.validate(pool).unwrap();
            prop_assert_eq!(access_multiset(&out.program), access_multiset(&p));
            let c0: f64 = p.nests.iter().map(LoopNest::total_cycles).sum();
            let c1: f64 = out.program.nests.iter().map(LoopNest::total_cycles).sum();
            prop_assert!((c0 - c1).abs() < 1e-6);
            if layout_aware && out.groups.len() <= 8 && !out.groups.is_empty() {
                let mut union = DiskSet::empty();
                for g in &out.groups {
                    if g.disks.is_empty() {
                        continue;
                    }
                    prop_assert!(union.is_disjoint(g.disks));
                    union = union.union(g.disks);
                }
            }
        }
    }

    /// Tiling preserves the access multiset and iteration counts.
    #[test]
    fn tiling_preserves_semantics(p in program_strategy(), all_nests in any::<bool>()) {
        let pool = DiskPool::new(8);
        let cfg = TilingConfig {
            scope: if all_nests { TilingScope::AllNests } else { TilingScope::CostliestNest },
            tiles: None,
        };
        for layout_aware in [false, true] {
            let out = loop_tiling(&p, pool, layout_aware, &cfg);
            out.program.validate(pool).unwrap();
            prop_assert_eq!(access_multiset(&out.program), access_multiset(&p));
            let i0: u64 = p.nests.iter().map(LoopNest::iter_count).sum();
            let i1: u64 = out.program.nests.iter().map(LoopNest::iter_count).sum();
            prop_assert_eq!(i0, i1);
        }
    }

    /// PDC keeps every array whole (factor 1), within the pool, and never
    /// changes shapes or the access pattern.
    #[test]
    fn pdc_is_a_pure_relayout(p in program_strategy(), pool_n in 1u32..8) {
        let pool = DiskPool::new(pool_n);
        let out = pdc_layout(&p, pool);
        out.program.validate(pool).unwrap();
        prop_assert_eq!(access_multiset(&out.program), access_multiset(&p));
        for (a, b) in p.arrays.iter().zip(&out.program.arrays) {
            prop_assert_eq!(&a.dims, &b.dims);
            prop_assert_eq!(b.striping.stripe_factor, 1);
            prop_assert!(pool.contains(b.striping.start_disk));
        }
        // Placement is popularity-sorted.
        let vols = sdpm_xform::access_volume(&p);
        for w in out.placement.windows(2) {
            prop_assert!(vols[w[0].array] >= vols[w[1].array]);
        }
    }
}
