//! Property tests for the striping substrate.

use proptest::prelude::*;
use sdpm_layout::order::{delinearize, linearize};
use sdpm_layout::{allocate_proportional, DiskId, DiskPool, DiskSet, StorageOrder, Striping};

proptest! {
    /// map_range partitions the byte range exactly: extents are in file
    /// order, contiguous, and sum to the requested length.
    #[test]
    fn map_range_partitions(
        pool_n in 1u32..16,
        start in 0u32..16,
        factor in 1u32..16,
        stripe in 1u64..256 * 1024,
        offset in 0u64..1_000_000,
        len in 0u64..1_000_000,
    ) {
        let pool = DiskPool::new(pool_n);
        let striping = Striping {
            start_disk: DiskId(start % pool_n),
            stripe_factor: factor.min(pool_n),
            stripe_bytes: stripe,
        };
        let extents = striping.map_range(pool, offset, len);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        prop_assert_eq!(total, len);
        let mut cur = offset;
        for e in &extents {
            prop_assert_eq!(e.file_offset, cur);
            prop_assert!(pool.contains(e.disk));
            cur += e.len;
        }
    }

    /// Each byte's disk assignment agrees between disk_for_offset and
    /// map_range.
    #[test]
    fn byte_disk_agreement(
        pool_n in 1u32..12,
        start in 0u32..12,
        factor in 1u32..12,
        stripe in 1u64..4096,
        probe in 0u64..100_000,
    ) {
        let pool = DiskPool::new(pool_n);
        let striping = Striping {
            start_disk: DiskId(start % pool_n),
            stripe_factor: factor.min(pool_n),
            stripe_bytes: stripe,
        };
        let d1 = striping.disk_for_offset(pool, probe);
        let extents = striping.map_range(pool, probe, 1);
        prop_assert_eq!(extents.len(), 1);
        prop_assert_eq!(extents[0].disk, d1);
    }

    /// Per-disk byte totals over a range always sum to the range length.
    #[test]
    fn per_disk_totals_partition(
        pool_n in 1u32..10,
        factor in 1u32..10,
        stripe in 1u64..8192,
        offset in 0u64..50_000,
        len in 0u64..200_000,
    ) {
        let pool = DiskPool::new(pool_n);
        let striping = Striping {
            start_disk: DiskId(0),
            stripe_factor: factor.min(pool_n),
            stripe_bytes: stripe,
        };
        let sum: u64 = pool
            .disks()
            .map(|d| striping.bytes_on_disk(pool, offset, len, d))
            .sum();
        prop_assert_eq!(sum, len);
    }

    /// Proportional allocation: disjoint, non-empty, covers the pool, and
    /// near-monotone (a strictly larger group never trails by more than
    /// the one-disk largest-remainder slack).
    #[test]
    fn allocation_invariants(
        pool_n in 1u32..32,
        sizes in proptest::collection::vec(1u64..1_000_000, 1..8),
    ) {
        prop_assume!(sizes.len() as u32 <= pool_n);
        let pool = DiskPool::new(pool_n);
        let sets = allocate_proportional(pool, &sizes).unwrap();
        let mut union = DiskSet::empty();
        for s in &sets {
            prop_assert!(!s.is_empty());
            prop_assert!(union.is_disjoint(*s));
            union = union.union(*s);
        }
        prop_assert_eq!(union, DiskSet::full(pool));
        for (i, a) in sizes.iter().enumerate() {
            for (j, b) in sizes.iter().enumerate() {
                if a > b {
                    prop_assert!(
                        sets[i].len() + 1 >= sets[j].len(),
                        "group {} ({}) got {} disks, group {} ({}) got {}",
                        i, a, sets[i].len(), j, b, sets[j].len()
                    );
                }
            }
        }
    }

    /// linearize/delinearize round-trip in both storage orders.
    #[test]
    fn linearize_round_trip(
        dims in proptest::collection::vec(1u64..12, 1..4),
        lin_seed in 0u64..10_000,
    ) {
        let total: u64 = dims.iter().product();
        let lin = lin_seed % total;
        for order in [StorageOrder::RowMajor, StorageOrder::ColMajor] {
            let idx = delinearize(&dims, lin, order);
            prop_assert_eq!(linearize(&dims, &idx, order), lin);
        }
    }

    /// DiskSet algebra laws on random sets.
    #[test]
    fn diskset_algebra(
        a in proptest::collection::vec(0u32..64, 0..20),
        b in proptest::collection::vec(0u32..64, 0..20),
    ) {
        let sa: DiskSet = a.iter().copied().map(DiskId).collect();
        let sb: DiskSet = b.iter().copied().map(DiskId).collect();
        prop_assert_eq!(sa.union(sb).len(), sa.len() + sb.len() - sa.intersection(sb).len());
        prop_assert!(sa.difference(sb).is_disjoint(sb));
        prop_assert_eq!(sa.difference(sb).union(sa.intersection(sb)), sa);
    }
}
