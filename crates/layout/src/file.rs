//! Striped array files.
//!
//! Each disk-resident array is stored in one file, striped per its
//! [`Striping`] 3-tuple. An [`ArrayFile`] combines the array's shape and
//! storage order with its striping and its per-disk base block, and maps
//! element ranges to `(disk, block, bytes)` extents — the address form the
//! I/O trace uses.

use crate::order::{linearize, StorageOrder};
use crate::pool::{DiskId, DiskPool, DiskSet};
use crate::striping::{StripeExtent, Striping};
use serde::{Deserialize, Serialize};

/// Disk block size in bytes. Every file's per-disk base is block-aligned
/// and trace addresses are in blocks of this size.
pub const BLOCK_BYTES: u64 = 512;

/// A run of bytes on one disk, in block-addressed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileExtent {
    /// Disk holding the run.
    pub disk: DiskId,
    /// Starting block number on the disk (absolute).
    pub start_block: u64,
    /// Byte offset within the starting block.
    pub block_offset: u64,
    /// Run length in bytes.
    pub len: u64,
}

/// A disk-resident array stored in one striped file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayFile {
    /// Array name, e.g. `"U1"`.
    pub name: String,
    /// Array extents per dimension (elements).
    pub dims: Vec<u64>,
    /// Bytes per element (8 for the double-precision arrays of the
    /// benchmarks).
    pub element_bytes: u64,
    /// Storage order on disk.
    pub order: StorageOrder,
    /// Striping 3-tuple.
    pub striping: Striping,
    /// Block number at which this file begins on *each* disk it uses.
    ///
    /// A parallel file system allocates every file the same base on each
    /// I/O node; files of one application are laid out one after another.
    pub base_block: u64,
}

impl ArrayFile {
    /// Total array size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.dims.iter().product::<u64>() * self.element_bytes
    }

    /// Total element count.
    #[must_use]
    pub fn element_count(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Bytes this file occupies on its busiest disk (for laying out the
    /// next file's `base_block`).
    #[must_use]
    pub fn per_disk_footprint_blocks(&self) -> u64 {
        let per_disk = self
            .total_bytes()
            .div_ceil(u64::from(self.striping.stripe_factor));
        per_disk.div_ceil(BLOCK_BYTES) + 1
    }

    /// File byte offset of the element with subscripts `idx`.
    #[must_use]
    pub fn byte_offset_of(&self, idx: &[u64]) -> u64 {
        linearize(&self.dims, idx, self.order) * self.element_bytes
    }

    /// Disk holding the element with subscripts `idx`.
    #[must_use]
    pub fn disk_of(&self, pool: DiskPool, idx: &[u64]) -> DiskId {
        self.striping
            .disk_for_offset(pool, self.byte_offset_of(idx))
    }

    /// The set of disks this file can ever touch.
    #[must_use]
    pub fn disk_set(&self, pool: DiskPool) -> DiskSet {
        self.striping.disk_set(pool)
    }

    /// Maps the *linear element* range `[first, first + count)` (in
    /// storage order) to block-addressed per-disk extents.
    #[must_use]
    pub fn map_elements(&self, pool: DiskPool, first: u64, count: u64) -> Vec<FileExtent> {
        debug_assert!(
            first + count <= self.element_count(),
            "element range [{first}, {}) exceeds array of {}",
            first + count,
            self.element_count()
        );
        let offset = first * self.element_bytes;
        let len = count * self.element_bytes;
        self.map_bytes(pool, offset, len)
    }

    /// Maps the file byte range `[offset, offset + len)` to block-addressed
    /// per-disk extents.
    #[must_use]
    pub fn map_bytes(&self, pool: DiskPool, offset: u64, len: u64) -> Vec<FileExtent> {
        self.striping
            .map_range(pool, offset, len)
            .into_iter()
            .map(|e: StripeExtent| FileExtent {
                disk: e.disk,
                start_block: self.base_block + e.disk_offset / BLOCK_BYTES,
                block_offset: e.disk_offset % BLOCK_BYTES,
                len: e.len,
            })
            .collect()
    }

    /// Re-stripes the file (the DL part of the Fig. 11/12 transformations):
    /// returns a copy with the new striping, keeping shape and order.
    #[must_use]
    pub fn restriped(&self, striping: Striping) -> ArrayFile {
        ArrayFile {
            striping,
            ..self.clone()
        }
    }

    /// Transposes the storage order (the layout transformation of
    /// Fig. 12).
    #[must_use]
    pub fn with_order(&self, order: StorageOrder) -> ArrayFile {
        ArrayFile {
            order,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_4s() -> (DiskPool, ArrayFile) {
        // Fig. 2's U1: size 4S striped (0, 4, S); make S = 1 KiB with
        // 8-byte elements -> 512 elements total, 128 per stripe.
        let pool = DiskPool::new(4);
        let f = ArrayFile {
            name: "U1".into(),
            dims: vec![512],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 4,
                stripe_bytes: 1024,
            },
            base_block: 100,
        };
        (pool, f)
    }

    #[test]
    fn figure2_element_to_disk_mapping() {
        let (pool, f) = file_4s();
        // Elements 0..127 on disk0, 128..255 on disk1, etc.
        assert_eq!(f.disk_of(pool, &[0]), DiskId(0));
        assert_eq!(f.disk_of(pool, &[127]), DiskId(0));
        assert_eq!(f.disk_of(pool, &[128]), DiskId(1));
        assert_eq!(f.disk_of(pool, &[511]), DiskId(3));
    }

    #[test]
    fn map_elements_is_block_addressed() {
        let (pool, f) = file_4s();
        let extents = f.map_elements(pool, 0, 256);
        assert_eq!(extents.len(), 2);
        assert_eq!(extents[0].disk, DiskId(0));
        assert_eq!(extents[0].start_block, 100);
        assert_eq!(extents[0].len, 1024);
        assert_eq!(extents[1].disk, DiskId(1));
        assert_eq!(extents[1].start_block, 100);
    }

    #[test]
    fn unaligned_byte_range_carries_block_offset() {
        let (pool, f) = file_4s();
        let extents = f.map_bytes(pool, 700, 100);
        assert_eq!(extents.len(), 1);
        assert_eq!(extents[0].disk, DiskId(0));
        assert_eq!(extents[0].start_block, 100 + 700 / BLOCK_BYTES);
        assert_eq!(extents[0].block_offset, 700 % BLOCK_BYTES);
    }

    #[test]
    fn total_sizes() {
        let (_, f) = file_4s();
        assert_eq!(f.total_bytes(), 4096);
        assert_eq!(f.element_count(), 512);
    }

    #[test]
    fn footprint_covers_striped_share() {
        let (_, f) = file_4s();
        // 4096 bytes over 4 disks = 1024 bytes/disk = 2 blocks + 1 slack.
        assert_eq!(f.per_disk_footprint_blocks(), 3);
    }

    #[test]
    fn storage_order_changes_disk_of_element() {
        let pool = DiskPool::new(4);
        let f = ArrayFile {
            name: "U2".into(),
            dims: vec![64, 64],
            element_bytes: 8,
            order: StorageOrder::RowMajor,
            striping: Striping {
                start_disk: DiskId(0),
                stripe_factor: 4,
                stripe_bytes: 8 * 64, // one row per stripe
            },
            base_block: 0,
        };
        // Row-major: row i is stripe i -> disk i % 4.
        assert_eq!(f.disk_of(pool, &[0, 63]), DiskId(0));
        assert_eq!(f.disk_of(pool, &[5, 0]), DiskId(1));
        let t = f.with_order(StorageOrder::ColMajor);
        // Col-major: column j is stripe j -> walking a row hops disks.
        assert_eq!(t.disk_of(pool, &[0, 0]), DiskId(0));
        assert_eq!(t.disk_of(pool, &[0, 1]), DiskId(1));
    }

    #[test]
    fn restriped_keeps_shape() {
        let (_, f) = file_4s();
        let new = Striping {
            start_disk: DiskId(2),
            stripe_factor: 2,
            stripe_bytes: 512,
        };
        let g = f.restriped(new);
        assert_eq!(g.striping, new);
        assert_eq!(g.dims, f.dims);
        assert_eq!(g.total_bytes(), f.total_bytes());
    }

    #[test]
    fn map_elements_total_length_matches() {
        let (pool, f) = file_4s();
        let extents = f.map_elements(pool, 100, 300);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 300 * 8);
    }
}
