//! Striping and disk-layout substrate.
//!
//! The paper assumes a PVFS-like parallel file system: each array lives in
//! a file striped round-robin across a set of I/O nodes (one disk per
//! node), described by the 3-tuple
//! `(starting disk, stripe factor, stripe size)` — exactly PVFS's
//! `(base, pcount, ssize)`. This crate owns that math:
//!
//! * [`striping`] — the 3-tuple itself and byte-range -> per-disk extent
//!   mapping,
//! * [`pool`] — disk identities and fixed-size disk pools,
//! * [`file`] — striped array files with per-disk base addresses and
//!   block-granular placement,
//! * [`order`] — row-/column-major storage orders and index linearization
//!   (needed by the tiling transformation's layout conversion),
//! * [`alloc`] — the proportional disk allocator used by the Fig. 11
//!   fission algorithm ("more data an array group has, more disks it is
//!   assigned").

#![forbid(unsafe_code)]
pub mod alloc;
pub mod file;
pub mod order;
pub mod pool;
pub mod striping;

pub use alloc::allocate_proportional;
pub use file::{ArrayFile, FileExtent, BLOCK_BYTES};
pub use order::{linearize, StorageOrder};
pub use pool::{DiskId, DiskPool, DiskSet};
pub use striping::{StripeExtent, Striping};
