//! Storage orders and index linearization.
//!
//! The tiling transformation of the paper (Fig. 12) compares each array's
//! *data access pattern* against its *storage pattern* and converts the
//! layout (e.g. row-major to column-major) when they disagree — that is
//! what lets `wupwise` profit from TL+DL while `galgel`, whose accesses
//! already conform, does not.

use serde::{Deserialize, Serialize};

/// Memory/disk storage order of a multi-dimensional array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageOrder {
    /// C order: the **last** subscript varies fastest.
    RowMajor,
    /// Fortran order: the **first** subscript varies fastest.
    ColMajor,
}

impl StorageOrder {
    /// The opposite order (the Fig. 12 layout transformation).
    #[must_use]
    pub fn transposed(self) -> StorageOrder {
        match self {
            StorageOrder::RowMajor => StorageOrder::ColMajor,
            StorageOrder::ColMajor => StorageOrder::RowMajor,
        }
    }
}

/// Linearizes the subscript vector `idx` of an array with extents `dims`
/// under `order`, producing a 0-based element index.
///
/// # Panics
/// If `idx.len() != dims.len()` or any subscript is out of range.
#[must_use]
pub fn linearize(dims: &[u64], idx: &[u64], order: StorageOrder) -> u64 {
    assert_eq!(
        dims.len(),
        idx.len(),
        "subscript rank {} does not match array rank {}",
        idx.len(),
        dims.len()
    );
    let mut lin = 0u64;
    match order {
        StorageOrder::RowMajor => {
            for (d, (&extent, &i)) in dims.iter().zip(idx).enumerate() {
                assert!(
                    i < extent,
                    "subscript {i} out of range in dim {d} ({extent})"
                );
                lin = lin * extent + i;
            }
        }
        StorageOrder::ColMajor => {
            for (d, (&extent, &i)) in dims.iter().zip(idx).enumerate().rev() {
                assert!(
                    i < extent,
                    "subscript {i} out of range in dim {d} ({extent})"
                );
                lin = lin * extent + i;
            }
        }
    }
    lin
}

/// Inverse of [`linearize`]: recovers the subscript vector of `lin`.
#[must_use]
pub fn delinearize(dims: &[u64], mut lin: u64, order: StorageOrder) -> Vec<u64> {
    let mut idx = vec![0u64; dims.len()];
    match order {
        StorageOrder::RowMajor => {
            for d in (0..dims.len()).rev() {
                idx[d] = lin % dims[d];
                lin /= dims[d];
            }
        }
        StorageOrder::ColMajor => {
            for d in 0..dims.len() {
                idx[d] = lin % dims[d];
                lin /= dims[d];
            }
        }
    }
    debug_assert_eq!(lin, 0, "linear index out of array bounds");
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_last_subscript_fastest() {
        let dims = [3, 4];
        assert_eq!(linearize(&dims, &[0, 0], StorageOrder::RowMajor), 0);
        assert_eq!(linearize(&dims, &[0, 1], StorageOrder::RowMajor), 1);
        assert_eq!(linearize(&dims, &[1, 0], StorageOrder::RowMajor), 4);
        assert_eq!(linearize(&dims, &[2, 3], StorageOrder::RowMajor), 11);
    }

    #[test]
    fn col_major_first_subscript_fastest() {
        let dims = [3, 4];
        assert_eq!(linearize(&dims, &[0, 0], StorageOrder::ColMajor), 0);
        assert_eq!(linearize(&dims, &[1, 0], StorageOrder::ColMajor), 1);
        assert_eq!(linearize(&dims, &[0, 1], StorageOrder::ColMajor), 3);
        assert_eq!(linearize(&dims, &[2, 3], StorageOrder::ColMajor), 11);
    }

    #[test]
    fn three_dimensional_round_trip() {
        let dims = [5, 7, 2];
        for order in [StorageOrder::RowMajor, StorageOrder::ColMajor] {
            for lin in 0..(5 * 7 * 2) {
                let idx = delinearize(&dims, lin, order);
                assert_eq!(linearize(&dims, &idx, order), lin);
            }
        }
    }

    #[test]
    fn orders_agree_on_one_dimensional_arrays() {
        let dims = [100];
        for i in [0u64, 1, 50, 99] {
            assert_eq!(
                linearize(&dims, &[i], StorageOrder::RowMajor),
                linearize(&dims, &[i], StorageOrder::ColMajor)
            );
        }
    }

    #[test]
    fn transpose_is_involutive() {
        assert_eq!(
            StorageOrder::RowMajor.transposed().transposed(),
            StorageOrder::RowMajor
        );
        assert_eq!(StorageOrder::RowMajor.transposed(), StorageOrder::ColMajor);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_subscript_panics() {
        let _ = linearize(&[3, 4], &[3, 0], StorageOrder::RowMajor);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_mismatch_panics() {
        let _ = linearize(&[3, 4], &[1], StorageOrder::RowMajor);
    }
}
