//! The striping 3-tuple and byte-range -> disk-extent mapping.
//!
//! A file of `L` bytes striped as `(start, factor, size)` is cut into
//! stripes of `size` bytes; stripe `s` lives on disk
//! `(start + s mod factor) mod pool`, at per-disk offset
//! `floor(s / factor) * size + (byte mod size)`. This is PVFS's layout and
//! the one Fig. 2 of the paper illustrates (array `U1` of size `4S` striped
//! `(0, 4, S)` puts stripe `k` on disk `k`).

use crate::pool::{DiskId, DiskPool, DiskSet};
use serde::{Deserialize, Serialize};

/// The striping 3-tuple `(starting disk, stripe factor, stripe size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Striping {
    /// First disk the file is striped onto (`base` in PVFS).
    pub start_disk: DiskId,
    /// Number of disks the file is striped over (`pcount` in PVFS).
    pub stripe_factor: u32,
    /// Stripe unit size in bytes (`ssize` in PVFS).
    pub stripe_bytes: u64,
}

/// A contiguous run of file bytes resident on a single disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeExtent {
    /// The disk holding this run.
    pub disk: DiskId,
    /// Byte offset of the run *within the file*.
    pub file_offset: u64,
    /// Byte offset of the run *on the disk*, relative to the file's
    /// per-disk base.
    pub disk_offset: u64,
    /// Length of the run in bytes.
    pub len: u64,
}

impl Striping {
    /// The paper's default striping (Table 1): 64 KB stripes over 8 disks
    /// starting at disk 0.
    #[must_use]
    pub fn default_paper() -> Self {
        Striping {
            start_disk: DiskId(0),
            stripe_factor: 8,
            stripe_bytes: 64 * 1024,
        }
    }

    /// Structural validity against a pool: positive factor and unit size,
    /// factor within the pool, start disk within the pool.
    pub fn validate(&self, pool: DiskPool) -> Result<(), String> {
        if self.stripe_factor == 0 {
            return Err("stripe factor must be positive".into());
        }
        if self.stripe_bytes == 0 {
            return Err("stripe size must be positive".into());
        }
        if self.stripe_factor > pool.count() {
            return Err(format!(
                "stripe factor {} exceeds pool size {}",
                self.stripe_factor,
                pool.count()
            ));
        }
        if !pool.contains(self.start_disk) {
            return Err(format!(
                "start disk {} outside pool of {}",
                self.start_disk,
                pool.count()
            ));
        }
        Ok(())
    }

    /// Disk holding stripe number `stripe` (0-based within the file).
    #[must_use]
    pub fn disk_for_stripe(&self, pool: DiskPool, stripe: u64) -> DiskId {
        pool.wrap(
            self.start_disk,
            (stripe % u64::from(self.stripe_factor)) as u32,
        )
    }

    /// Disk holding the byte at `offset` within the file.
    #[must_use]
    pub fn disk_for_offset(&self, pool: DiskPool, offset: u64) -> DiskId {
        self.disk_for_stripe(pool, offset / self.stripe_bytes)
    }

    /// Per-disk byte offset (relative to the file's base on that disk) of
    /// the file byte at `offset`.
    #[must_use]
    pub fn disk_offset_of(&self, offset: u64) -> u64 {
        let stripe = offset / self.stripe_bytes;
        let local_stripe = stripe / u64::from(self.stripe_factor);
        local_stripe * self.stripe_bytes + offset % self.stripe_bytes
    }

    /// The set of disks this striping can ever touch.
    #[must_use]
    pub fn disk_set(&self, pool: DiskPool) -> DiskSet {
        (0..self.stripe_factor)
            .map(|i| pool.wrap(self.start_disk, i))
            .collect()
    }

    /// Splits the file byte range `[offset, offset + len)` into per-disk
    /// extents, in file order. Adjacent extents that land on the same disk
    /// *and* are contiguous on that disk (only possible when
    /// `stripe_factor == 1`) are merged.
    #[must_use]
    pub fn map_range(&self, pool: DiskPool, offset: u64, len: u64) -> Vec<StripeExtent> {
        let mut out: Vec<StripeExtent> = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe = cur / self.stripe_bytes;
            let stripe_end = (stripe + 1) * self.stripe_bytes;
            let run = stripe_end.min(end) - cur;
            let disk = self.disk_for_stripe(pool, stripe);
            let disk_offset = self.disk_offset_of(cur);
            if let Some(last) = out.last_mut() {
                if last.disk == disk
                    && last.file_offset + last.len == cur
                    && last.disk_offset + last.len == disk_offset
                {
                    last.len += run;
                    cur += run;
                    continue;
                }
            }
            out.push(StripeExtent {
                disk,
                file_offset: cur,
                disk_offset,
                len: run,
            });
            cur += run;
        }
        out
    }

    /// Bytes of the file range `[offset, offset + len)` that land on
    /// `disk`.
    #[must_use]
    pub fn bytes_on_disk(&self, pool: DiskPool, offset: u64, len: u64, disk: DiskId) -> u64 {
        self.map_range(pool, offset, len)
            .iter()
            .filter(|e| e.disk == disk)
            .map(|e| e.len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool8() -> DiskPool {
        DiskPool::new(8)
    }

    #[test]
    fn paper_figure2_example() {
        // Fig. 2(b): U1 of size 4S striped (0, 4, S) -> stripe k on disk k.
        let pool = DiskPool::new(4);
        let s = 1024u64;
        let striping = Striping {
            start_disk: DiskId(0),
            stripe_factor: 4,
            stripe_bytes: s,
        };
        for k in 0..4u64 {
            assert_eq!(striping.disk_for_stripe(pool, k), DiskId(k as u32));
        }
        // First half of the file (2S bytes) touches exactly disks 0 and 1,
        // as the paper's walkthrough of the first loop nest says.
        let extents = striping.map_range(pool, 0, 2 * s);
        let disks: Vec<_> = extents.iter().map(|e| e.disk).collect();
        assert_eq!(disks, vec![DiskId(0), DiskId(1)]);
    }

    #[test]
    fn default_paper_matches_table1() {
        let s = Striping::default_paper();
        assert_eq!(s.start_disk, DiskId(0));
        assert_eq!(s.stripe_factor, 8);
        assert_eq!(s.stripe_bytes, 64 * 1024);
        assert!(s.validate(pool8()).is_ok());
    }

    #[test]
    fn round_robin_wraps_start_disk() {
        let s = Striping {
            start_disk: DiskId(6),
            stripe_factor: 4,
            stripe_bytes: 100,
        };
        let p = pool8();
        let seq: Vec<_> = (0..6).map(|k| s.disk_for_stripe(p, k)).collect();
        assert_eq!(
            seq,
            vec![
                DiskId(6),
                DiskId(7),
                DiskId(0),
                DiskId(1),
                DiskId(6),
                DiskId(7)
            ]
        );
    }

    #[test]
    fn disk_offsets_pack_local_stripes_densely() {
        let s = Striping {
            start_disk: DiskId(0),
            stripe_factor: 4,
            stripe_bytes: 100,
        };
        // Byte 0 and byte 400 both live on disk 0; 400 is its 2nd stripe.
        assert_eq!(s.disk_offset_of(0), 0);
        assert_eq!(s.disk_offset_of(400), 100);
        assert_eq!(s.disk_offset_of(450), 150);
        assert_eq!(s.disk_offset_of(99), 99);
        assert_eq!(s.disk_offset_of(100), 0); // disk 1's first stripe
    }

    #[test]
    fn map_range_covers_exactly_the_request() {
        let s = Striping::default_paper();
        let p = pool8();
        let extents = s.map_range(p, 1000, 300_000);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 300_000);
        // Extents are in file order and non-overlapping.
        let mut cur = 1000;
        for e in &extents {
            assert_eq!(e.file_offset, cur);
            cur += e.len;
        }
    }

    #[test]
    fn map_range_merges_on_single_disk_striping() {
        let s = Striping {
            start_disk: DiskId(3),
            stripe_factor: 1,
            stripe_bytes: 64,
        };
        let extents = s.map_range(pool8(), 10, 1000);
        assert_eq!(extents.len(), 1, "factor-1 runs merge into one extent");
        assert_eq!(extents[0].disk, DiskId(3));
        assert_eq!(extents[0].len, 1000);
        assert_eq!(extents[0].disk_offset, 10);
    }

    #[test]
    fn disk_set_matches_factor() {
        let p = pool8();
        let s = Striping {
            start_disk: DiskId(5),
            stripe_factor: 4,
            stripe_bytes: 64,
        };
        let set = s.disk_set(p);
        assert_eq!(set.len(), 4);
        for d in [5u32, 6, 7, 0] {
            assert!(set.contains(DiskId(d)));
        }
    }

    #[test]
    fn bytes_on_disk_sums_to_range_length() {
        let p = pool8();
        let s = Striping::default_paper();
        let len = 1_000_000;
        let per_disk: u64 = p.disks().map(|d| s.bytes_on_disk(p, 123, len, d)).sum();
        assert_eq!(per_disk, len);
    }

    #[test]
    fn validate_flags_bad_configs() {
        let p = pool8();
        let mut s = Striping::default_paper();
        s.stripe_factor = 9;
        assert!(s.validate(p).is_err());
        s.stripe_factor = 0;
        assert!(s.validate(p).is_err());
        s = Striping::default_paper();
        s.stripe_bytes = 0;
        assert!(s.validate(p).is_err());
        s = Striping::default_paper();
        s.start_disk = DiskId(8);
        assert!(s.validate(p).is_err());
    }

    #[test]
    fn zero_length_range_maps_to_nothing() {
        let s = Striping::default_paper();
        assert!(s.map_range(pool8(), 12345, 0).is_empty());
    }
}
