//! Disk identities, pools, and sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of one disk (one I/O node) in the storage subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiskId(pub u32);

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// A fixed-size pool of disks, `disk0..disk(n-1)`.
///
/// The paper's default configuration (Table 1, "Striping Information") is
/// an 8-disk pool; the stripe-factor sensitivity study (Figs. 7/8) varies
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskPool {
    count: u32,
}

impl DiskPool {
    /// A pool of `count` disks. `count` must be positive.
    #[must_use]
    pub fn new(count: u32) -> Self {
        assert!(count > 0, "a disk pool needs at least one disk");
        DiskPool { count }
    }

    /// Number of disks in the pool.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True if `disk` belongs to this pool.
    #[must_use]
    pub fn contains(&self, disk: DiskId) -> bool {
        disk.0 < self.count
    }

    /// Iterates every disk in the pool in id order.
    pub fn disks(&self) -> impl DoubleEndedIterator<Item = DiskId> {
        (0..self.count).map(DiskId)
    }

    /// The `i`-th disk after `start`, wrapping around the pool.
    #[must_use]
    pub fn wrap(&self, start: DiskId, i: u32) -> DiskId {
        DiskId((start.0 + i) % self.count)
    }
}

/// A set of disks, dense over a pool.
///
/// Small and copy-friendly: the paper's configurations top out at a few
/// dozen disks, so a 64-bit mask covers every experiment while keeping
/// set algebra branch-free. Pools larger than 64 disks are rejected at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DiskSet {
    bits: u64,
}

impl DiskSet {
    /// Maximum pool size representable.
    pub const MAX_DISKS: u32 = 64;

    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        DiskSet { bits: 0 }
    }

    /// The set of all disks in `pool`.
    #[must_use]
    pub fn full(pool: DiskPool) -> Self {
        assert!(
            pool.count() <= Self::MAX_DISKS,
            "pool too large for DiskSet"
        );
        if pool.count() == Self::MAX_DISKS {
            DiskSet { bits: u64::MAX }
        } else {
            DiskSet {
                bits: (1u64 << pool.count()) - 1,
            }
        }
    }

    /// Inserts `disk`. Panics if the id exceeds [`Self::MAX_DISKS`].
    pub fn insert(&mut self, disk: DiskId) {
        assert!(disk.0 < Self::MAX_DISKS, "disk id too large for DiskSet");
        self.bits |= 1u64 << disk.0;
    }

    /// Removes `disk` if present.
    pub fn remove(&mut self, disk: DiskId) {
        if disk.0 < Self::MAX_DISKS {
            self.bits &= !(1u64 << disk.0);
        }
    }

    /// True if `disk` is in the set.
    #[must_use]
    pub fn contains(&self, disk: DiskId) -> bool {
        disk.0 < Self::MAX_DISKS && self.bits & (1u64 << disk.0) != 0
    }

    /// Number of disks in the set.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.bits.count_ones()
    }

    /// True if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: DiskSet) -> DiskSet {
        DiskSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: DiskSet) -> DiskSet {
        DiskSet {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference (`self - other`).
    #[must_use]
    pub fn difference(&self, other: DiskSet) -> DiskSet {
        DiskSet {
            bits: self.bits & !other.bits,
        }
    }

    /// True if the two sets share no disk.
    #[must_use]
    pub fn is_disjoint(&self, other: DiskSet) -> bool {
        self.bits & other.bits == 0
    }

    /// Iterates member disks in id order.
    pub fn iter(&self) -> impl Iterator<Item = DiskId> + '_ {
        let bits = self.bits;
        (0..Self::MAX_DISKS).filter_map(move |i| {
            if bits & (1u64 << i) != 0 {
                Some(DiskId(i))
            } else {
                None
            }
        })
    }
}

impl FromIterator<DiskId> for DiskSet {
    fn from_iter<T: IntoIterator<Item = DiskId>>(iter: T) -> Self {
        let mut s = DiskSet::empty();
        for d in iter {
            s.insert(d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_wraps_round_robin() {
        let p = DiskPool::new(8);
        assert_eq!(p.wrap(DiskId(6), 0), DiskId(6));
        assert_eq!(p.wrap(DiskId(6), 1), DiskId(7));
        assert_eq!(p.wrap(DiskId(6), 2), DiskId(0));
        assert_eq!(p.wrap(DiskId(0), 17), DiskId(1));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn empty_pool_rejected() {
        let _ = DiskPool::new(0);
    }

    #[test]
    fn pool_membership_and_iteration() {
        let p = DiskPool::new(4);
        assert!(p.contains(DiskId(3)));
        assert!(!p.contains(DiskId(4)));
        let ids: Vec<_> = p.disks().collect();
        assert_eq!(ids, vec![DiskId(0), DiskId(1), DiskId(2), DiskId(3)]);
    }

    #[test]
    fn set_basic_algebra() {
        let mut a = DiskSet::empty();
        a.insert(DiskId(1));
        a.insert(DiskId(3));
        let b: DiskSet = [DiskId(3), DiskId(5)].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(DiskId(3)));
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![DiskId(1)]);
        assert!(!a.is_disjoint(b));
        assert!(a.difference(b).is_disjoint(b));
    }

    #[test]
    fn full_set_covers_pool_exactly() {
        let p = DiskPool::new(8);
        let s = DiskSet::full(p);
        assert_eq!(s.len(), 8);
        assert!(s.contains(DiskId(7)));
        assert!(!s.contains(DiskId(8)));
        let all64 = DiskSet::full(DiskPool::new(64));
        assert_eq!(all64.len(), 64);
    }

    #[test]
    fn remove_and_empty() {
        let mut s: DiskSet = [DiskId(2)].into_iter().collect();
        assert!(!s.is_empty());
        s.remove(DiskId(2));
        assert!(s.is_empty());
        s.remove(DiskId(70)); // out of range: ignored
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_ordered() {
        let s: DiskSet = [DiskId(5), DiskId(0), DiskId(63)].into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![DiskId(0), DiskId(5), DiskId(63)]
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_disk_id_rejected() {
        let mut s = DiskSet::empty();
        s.insert(DiskId(64));
    }
}
