//! Proportional disk allocation for array groups.
//!
//! The last step of the Fig. 11 fission algorithm: "Allocate disks to
//! array groups based on total data size in each group". Each group gets a
//! **disjoint, contiguous** run of disks, at least one each, with the
//! remaining disks distributed by the largest-remainder method so the
//! shares track the byte proportions as closely as integer counts allow.

use crate::pool::{DiskId, DiskPool, DiskSet};

/// Allocates the disks of `pool` to `sizes.len()` groups proportionally to
/// `sizes`, returning one contiguous, disjoint [`DiskSet`] per group that
/// together cover the whole pool.
///
/// # Errors
/// * if `sizes` is empty,
/// * if there are more groups than disks (every group needs at least one),
/// * if every group size is zero (no proportion to honor).
pub fn allocate_proportional(pool: DiskPool, sizes: &[u64]) -> Result<Vec<DiskSet>, String> {
    if sizes.is_empty() {
        return Err("no array groups to allocate disks to".into());
    }
    let disks = pool.count() as u64;
    let groups = sizes.len() as u64;
    if groups > disks {
        return Err(format!(
            "{groups} array groups cannot each get a disk from a {disks}-disk pool"
        ));
    }
    let total: u64 = sizes.iter().sum();
    if total == 0 {
        return Err("all array groups are empty".into());
    }

    // Start from the guaranteed one disk per group, then hand out the
    // remaining disks by largest fractional remainder of the ideal share.
    let mut counts = vec![1u64; sizes.len()];
    let spare = disks - groups;
    // Ideal share of the *spare* disks, proportional to size.
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(sizes.len());
    let mut assigned = 0u64;
    for (i, &size) in sizes.iter().enumerate() {
        let ideal = spare as f64 * size as f64 / total as f64;
        let floor = ideal.floor() as u64;
        counts[i] += floor;
        assigned += floor;
        remainders.push((i, ideal - floor as f64));
    }
    // Largest remainders first; tie-break on larger group size, then lower
    // index, for determinism.
    remainders.sort_by(|&(i, ra), &(j, rb)| {
        rb.partial_cmp(&ra)
            .unwrap()
            .then_with(|| sizes[j].cmp(&sizes[i]))
            .then_with(|| i.cmp(&j))
    });
    let mut left = spare - assigned;
    for &(i, _) in &remainders {
        if left == 0 {
            break;
        }
        counts[i] += 1;
        left -= 1;
    }
    debug_assert_eq!(counts.iter().sum::<u64>(), disks);

    // Carve contiguous runs in group order.
    let mut out = Vec::with_capacity(sizes.len());
    let mut next = 0u32;
    for &c in &counts {
        let set: DiskSet = (next..next + c as u32).map(DiskId).collect();
        out.push(set);
        next += c as u32;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lens(sets: &[DiskSet]) -> Vec<u32> {
        sets.iter().map(DiskSet::len).collect()
    }

    #[test]
    fn equal_groups_split_evenly() {
        let pool = DiskPool::new(8);
        let sets = allocate_proportional(pool, &[100, 100, 100, 100]).unwrap();
        assert_eq!(lens(&sets), vec![2, 2, 2, 2]);
    }

    #[test]
    fn paper_figure9_example_allocation() {
        // Fig. 9(c): four equally-sized groups {U1,U2,U5}, {U3,U4,U8},
        // {U6,U7}, {U9,U10} with sizes 3:3:2:2 over 10 disks ->
        // 3, 3, 2, 2 disks.
        let pool = DiskPool::new(10);
        let sets = allocate_proportional(pool, &[3, 3, 2, 2]).unwrap();
        assert_eq!(lens(&sets), vec![3, 3, 2, 2]);
    }

    #[test]
    fn allocations_are_disjoint_and_cover_pool() {
        let pool = DiskPool::new(8);
        let sets = allocate_proportional(pool, &[5, 1, 1]).unwrap();
        let mut union = DiskSet::empty();
        for (i, s) in sets.iter().enumerate() {
            assert!(!s.is_empty(), "group {i} got no disk");
            assert!(union.is_disjoint(*s), "group {i} overlaps predecessors");
            union = union.union(*s);
        }
        assert_eq!(union, DiskSet::full(pool));
    }

    #[test]
    fn big_group_gets_more_disks() {
        let pool = DiskPool::new(8);
        let sets = allocate_proportional(pool, &[700, 100]).unwrap();
        assert!(sets[0].len() > sets[1].len());
        assert_eq!(sets[0].len() + sets[1].len(), 8);
        // Largest remainder: ideals over the 6 spare disks are 5.25 and
        // 0.75, so the leftover disk goes to the small group -> [6, 2].
        assert_eq!(lens(&sets), vec![6, 2]);
    }

    #[test]
    fn tiny_group_still_gets_one_disk() {
        let pool = DiskPool::new(4);
        let sets = allocate_proportional(pool, &[1_000_000, 1, 1, 1]).unwrap();
        assert_eq!(lens(&sets), vec![1, 1, 1, 1]);
    }

    #[test]
    fn single_group_takes_everything() {
        let pool = DiskPool::new(8);
        let sets = allocate_proportional(pool, &[42]).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0], DiskSet::full(pool));
    }

    #[test]
    fn too_many_groups_is_an_error() {
        let pool = DiskPool::new(2);
        assert!(allocate_proportional(pool, &[1, 1, 1]).is_err());
    }

    #[test]
    fn degenerate_inputs_are_errors() {
        let pool = DiskPool::new(4);
        assert!(allocate_proportional(pool, &[]).is_err());
        assert!(allocate_proportional(pool, &[0, 0]).is_err());
    }

    #[test]
    fn zero_sized_group_among_nonzero_still_gets_its_floor_disk() {
        let pool = DiskPool::new(4);
        let sets = allocate_proportional(pool, &[10, 0]).unwrap();
        assert_eq!(lens(&sets), vec![3, 1]);
    }

    #[test]
    fn deterministic_under_ties() {
        let pool = DiskPool::new(5);
        let a = allocate_proportional(pool, &[2, 2, 2]).unwrap();
        let b = allocate_proportional(pool, &[2, 2, 2]).unwrap();
        assert_eq!(a, b);
        assert_eq!(lens(&a).iter().sum::<u32>(), 5);
    }
}
